package poe

import (
	"context"
	"time"

	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/storage"
	"github.com/poexec/poe/internal/types"
)

type status int

const (
	statusNormal status = iota
	statusViewChange
)

// Byzantine lets tests inject arbitrary malicious primary behaviour
// (Example 3 of the paper). A nil Byzantine is honest. Most callers should
// prefer the declarative, cross-protocol Options.Adversary instead; this
// interface remains for attacks a spec cannot express.
type Byzantine interface {
	// ProposeTo rewrites (or suppresses, by returning nil) the proposal the
	// primary sends to one replica. Equivocation returns different batches
	// for different replicas; darkness returns nil for a subset.
	ProposeTo(to types.ReplicaID, p *Propose) *Propose
	// SilenceCertify suppresses the CERTIFY broadcast for a sequence number
	// (TS mode), leaving replicas supported-but-uncommitted.
	SilenceCertify(seq types.SeqNum) bool
}

// Options configure a PoE replica.
type Options struct {
	protocol.RuntimeOptions
	// Adversary makes this replica a Byzantine primary per the shared
	// cross-protocol spec (equivocating PROPOSE variants, selective
	// silence, withheld CERTIFY broadcasts). Nil means honest. Ignored when
	// Byz is also set.
	Adversary *protocol.AdversarySpec
	// Byz injects custom malicious behaviour for tests; nil means honest.
	Byz Byzantine
	// Tick overrides the housekeeping interval (defaults to a quarter of
	// the view timeout).
	Tick time.Duration
}

// specByz adapts the declarative cross-protocol adversary spec to PoE's
// Byzantine hook.
type specByz struct{ spec *protocol.AdversarySpec }

func (s specByz) ProposeTo(to types.ReplicaID, p *Propose) *Propose {
	switch s.spec.ActionFor(to) {
	case protocol.ProposeSilence:
		return nil
	case protocol.ProposeEquivocate:
		alt := *p
		alt.Batch = protocol.EquivocateBatch(p.Batch)
		return &alt
	default:
		return p
	}
}

func (s specByz) SilenceCertify(seq types.SeqNum) bool { return s.spec.SilenceCert(seq) }

// Replica is one PoE replica: the backup role of Fig 3 plus, when
// id = v mod n, the primary role, plus the view-change algorithm of Fig 5.
// All state is confined to the Run goroutine.
type Replica struct {
	rt  *protocol.Runtime
	byz Byzantine

	view        types.View
	status      status
	nextPropose types.SeqNum
	slots       map[types.SeqNum]*slot

	// failure detection
	pendingReqs  map[types.Digest]pendingReq
	lastProgress time.Time
	curTimeout   time.Duration

	// execHigh is the highest executed client sequence number per client.
	// Pipelined clients retry by broadcast, and a retry of an already
	// executed request can reach a backup after afterExecution cleared that
	// request's pending entry — without this watermark the late copy would
	// be tracked as pending forever, age past curTimeout once load stops,
	// and drive spurious view changes until the stale set drains. The reply
	// cache cannot stand in for it: it keeps only the latest reply per
	// client, so retries of older in-flight sequences miss it.
	execHigh map[types.ClientID]uint64

	// view-change state
	vcTarget   types.View // view we are trying to move to while in statusViewChange
	vcStarted  time.Time
	vcResent   time.Time
	vcExecMark types.SeqNum // last executed seq when the view change started
	vcVotes    map[types.View]map[types.ReplicaID]*VCRequest
	sentVC     map[types.View]bool
	lastNV     *NVPropose // cached by the new primary for late joiners

	// catchup marks a replica restarted from durable state: the first tick
	// proactively fetches past the recovered prefix.
	catchup bool

	// strongQ holds STRONG reads the primary deferred because its executed
	// head still trailed its proposals; drained after every execution burst
	// and on the tick, with a bounded wait before falling back to ordering.
	strongQ protocol.StrongReads

	tick time.Duration
}

type slot struct {
	view        types.View
	haveBatch   bool
	batch       types.Batch
	digest      types.Digest // h = D(k||v||D(batch))
	supported   bool
	shares      map[types.ReplicaID]crypto.Share
	committed   bool
	pendingCert *Certify  // certify that arrived before the proposal
	created     time.Time // when this slot appeared (failure-detection grace)
}

type pendingReq struct {
	req   types.Request
	since time.Time
}

// New creates a PoE replica bound to a transport. Call Run to start it.
func New(cfg protocol.Config, ring *crypto.KeyRing, net network.Transport, opts Options) (*Replica, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rt := protocol.NewRuntime(cfg, ring, net, opts.RuntimeOptions)
	tick := opts.Tick
	if tick == 0 {
		// The tick drives both failure detection (needs ≲ ViewTimeout/4)
		// and batch-linger flushing (needs milliseconds).
		tick = cfg.ViewTimeout / 4
		if tick > 10*time.Millisecond {
			tick = 10 * time.Millisecond
		}
	}
	byz := opts.Byz
	if byz == nil && opts.Adversary != nil {
		byz = specByz{opts.Adversary}
	}
	r := &Replica{
		rt:           rt,
		byz:          byz,
		nextPropose:  rt.Exec.LastExecuted() + 1,
		slots:        make(map[types.SeqNum]*slot),
		pendingReqs:  make(map[types.Digest]pendingReq),
		execHigh:     make(map[types.ClientID]uint64),
		lastProgress: time.Now(),
		curTimeout:   cfg.ViewTimeout,
		vcVotes:      make(map[types.View]map[types.ReplicaID]*VCRequest),
		sentVC:       make(map[types.View]bool),
		tick:         tick,
	}
	rt.Sync.AfterInstall = r.afterInstall
	if rt.RecoveredSeq > 0 {
		// Crash-restart: resume sequencing after the recovered prefix and
		// rejoin in the view of the last durably executed batch — the
		// cluster may have moved further, but the ordinary view-change
		// catch-up handles that, exactly as it does for a replica that
		// missed the view change in the dark. The first tick issues a
		// Fetch so the replica closes the gap to the live cluster even if
		// no new proposals arrive to reveal it.
		r.view = rt.Exec.Chain().Head().View
		r.catchup = true
	}
	if rt.Store != nil {
		// Durable (re)start — including a wiped rejoin that recovered
		// nothing: ask peers whether a snapshot is needed rather than wait
		// for checkpoint votes an idle cluster will never emit.
		rt.Sync.Probe()
	}
	return r, nil
}

// Runtime exposes the replica's runtime for inspection by tests and the
// harness (metrics, executor state). The returned value must be treated as
// read-mostly while the replica runs.
func (r *Replica) Runtime() *protocol.Runtime { return r.rt }

// View returns the replica's current view (for tests; racy while running).
func (r *Replica) View() types.View { return r.view }

// Run processes messages until the context is cancelled. Inbound messages
// pass through the parallel authentication pipeline: their authenticators
// are verified on worker goroutines and invalid messages are dropped.
// Outbound messages leave unsigned through the egress pipeline, which
// computes authenticators off-loop and releases sends in submission order;
// its Local channel carries the deferred self-votes (own SUPPORT share,
// own checkpoint vote) back onto the loop. The loop below — the replica
// state machine — therefore performs no asymmetric crypto in either
// direction on the normal-case path.
func (r *Replica) Run(ctx context.Context) {
	ticker := time.NewTicker(r.tick)
	defer ticker.Stop()
	inbox := r.rt.StartPipeline(ctx, r.verifyInbound)
	for {
		select {
		case <-ctx.Done():
			return
		case env, ok := <-inbox:
			if !ok {
				return
			}
			r.rt.Metrics.MessagesIn.Add(1)
			r.dispatch(env)
		case fn := <-r.rt.Egress.Local():
			fn()
		case <-ticker.C:
			r.onTick()
		}
	}
}

func (r *Replica) dispatch(env network.Envelope) {
	switch m := env.Msg.(type) {
	case *protocol.ClientRequest:
		r.onClientRequest(env.From, &m.Req)
	case *protocol.ForwardRequest:
		r.onForwardRequest(&m.Req)
	case *protocol.ReadRequest:
		r.onReadRequest(&m.Req)
	case *protocol.LeaseGrant:
		r.rt.OnLeaseGrant(m)
	case *Propose:
		r.onPropose(env.From, m)
	case *Support:
		r.onSupport(env.From, m)
	case *Certify:
		r.onCertify(env.From, m)
	case *protocol.Checkpoint:
		r.rt.OnCheckpoint(m)
	case *protocol.Fetch:
		r.rt.HandleFetch(m)
	case *protocol.FetchReply:
		r.onFetchReply(m)
	case *protocol.SnapshotRequest:
		r.rt.HandleSnapshotRequest(m)
	case *protocol.SnapshotOffer:
		r.rt.Sync.OnOffer(m)
	case *protocol.SnapshotChunk:
		r.rt.Sync.OnChunk(m)
	case *VCRequest:
		r.onVCRequest(m)
	case *NVPropose:
		r.onNVPropose(env.From, m)
	}
}

func (r *Replica) isPrimary() bool { return r.rt.Cfg.IsPrimary(r.view) }

func (r *Replica) primaryNode() types.NodeID {
	return types.ReplicaNode(r.rt.Cfg.Primary(r.view))
}

// --- client requests ---

func (r *Replica) onClientRequest(from types.NodeID, req *types.Request) {
	// Origin and signature were checked by the authentication pipeline.
	if !from.IsClient() || req.Txn.Client != from.Client() {
		return
	}
	if r.rt.ReplayReply(req) {
		return
	}
	if r.status != statusNormal {
		// Remember the request; it is re-forwarded once the new view starts.
		r.trackPending(req)
		return
	}
	if r.isPrimary() {
		r.rt.Batcher.Add(*req)
		r.proposeReady(false)
		return
	}
	// A client only contacts a backup when it suspects the primary: forward
	// the request and start the failure-detection timer (§II-B).
	r.trackPending(req)
	fwd := &protocol.ForwardRequest{Req: *req}
	r.rt.Net.Send(r.primaryNode(), fwd)
}

func (r *Replica) onForwardRequest(req *types.Request) {
	if r.status != statusNormal || !r.isPrimary() {
		return
	}
	if r.rt.ReplayReply(req) {
		return
	}
	r.rt.Batcher.Add(*req)
	r.proposeReady(false)
}

// --- hybrid-consistency read path ---

// onReadRequest serves a tiered read-only request without ordering when the
// tier's precondition holds, and falls back to the ordering pipeline
// otherwise. The verify pipeline already checked the client signature and
// that the transaction is read-only with a non-ordered tier.
func (r *Replica) onReadRequest(req *types.Request) {
	switch req.Txn.Consistency {
	case types.ConsistencySpeculative:
		// Any replica answers from its executed (speculative) prefix, in any
		// status: the reply is tagged with the serving (seq, state digest)
		// and re-answered through the repair path if a rollback truncates it.
		r.rt.ServeLocalRead(req, types.ConsistencySpeculative, r.view)
	case types.ConsistencyStrong:
		if r.tryServeStrong(req) {
			return
		}
		if r.isPrimary() && r.status == statusNormal {
			// Lease held but the executed head trails the proposals (or the
			// lease is one renewal short): park the read; afterExecution
			// drains it the moment the head catches up.
			r.strongQ.Defer(req, time.Now())
			return
		}
		r.fallbackRead(req)
	default:
		r.fallbackRead(req)
	}
}

// tryServeStrong answers a STRONG read from the local executed prefix iff
// this replica is the primary, holds a quorum read lease, and is caught up
// (executed head == proposal head, so every write it has acknowledged is in
// the answered prefix). Under a valid lease no view change can assemble a
// quorum — every grantor promised not to join a higher view — so no
// conflicting write can commit elsewhere while the serve is current;
// when the lease cannot be validated the read simply pays for ordering, so
// linearizability never rests on clock synchronization.
func (r *Replica) tryServeStrong(req *types.Request) bool {
	if !r.isPrimary() || r.status != statusNormal {
		return false
	}
	if r.rt.Exec.LastExecuted()+1 != r.nextPropose {
		return false
	}
	if !r.rt.Lease.HolderValid(r.view) {
		return false
	}
	r.rt.ServeLocalRead(req, types.ConsistencyStrong, r.view)
	return true
}

// fallbackRead routes a tiered read through the ordering pipeline: the
// primary batches it like any write; a backup forwards it. Fallback reads are
// dedup-exempt end to end (they use their own client-local sequence space),
// so they pass the batcher watermark, the executor's dedup, and the reply
// ring without colliding with writes.
func (r *Replica) fallbackRead(req *types.Request) {
	r.rt.Metrics.ReadFallbacks.Add(1)
	if r.isPrimary() && r.status == statusNormal {
		r.rt.Batcher.Add(*req)
		r.proposeReady(false)
		return
	}
	r.rt.Net.Send(r.primaryNode(), &protocol.ForwardRequest{Req: *req})
}

// drainStrongReads retries deferred STRONG reads, falling back to ordering
// for any that waited longer than half a lease duration.
func (r *Replica) drainStrongReads(now time.Time) {
	if r.strongQ.Len() == 0 {
		return
	}
	r.strongQ.Drain(now, r.rt.Cfg.LeaseDuration/2, r.tryServeStrong, r.fallbackRead)
}

func (r *Replica) trackPending(req *types.Request) {
	if req.Txn.Seq <= r.execHigh[req.Txn.Client] {
		// Late retry of an already executed request (clients propose their
		// sequences in order over FIFO links, so the watermark is exact).
		return
	}
	d := req.Digest()
	if _, ok := r.pendingReqs[d]; !ok {
		r.pendingReqs[d] = pendingReq{req: *req, since: time.Now()}
	}
}

// --- primary: propose ---

// proposeReady proposes as many batches as the batcher and the out-of-order
// window allow. With force, a lingering partial batch is proposed too.
func (r *Replica) proposeReady(force bool) {
	if !r.isPrimary() || r.status != statusNormal {
		return
	}
	lastExec := r.rt.Exec.LastExecuted()
	for r.nextPropose <= lastExec+types.SeqNum(r.rt.Cfg.Window) {
		batch, ok := r.rt.Batcher.Take(force)
		if !ok {
			return
		}
		r.propose(batch)
	}
}

func (r *Replica) propose(batch types.Batch) {
	seq := r.nextPropose
	r.nextPropose++
	m := &Propose{View: r.view, Seq: seq, Batch: batch}
	r.rt.Metrics.ProposedBatches.Add(1)
	if r.byz != nil {
		// Byzantine variants sign inline: the attack path is not the hot
		// path, and per-target variants defeat single-payload batching.
		m.Auth = r.rt.AuthBroadcast(m.SignedPayload())
		for i := 0; i < r.rt.Cfg.N; i++ {
			id := types.ReplicaID(i)
			if id == r.rt.Cfg.ID {
				continue
			}
			variant := r.byz.ProposeTo(id, m)
			if variant == nil {
				continue
			}
			if variant != m {
				variant.Auth = r.rt.AuthBroadcast(variant.SignedPayload())
			}
			r.rt.SendReplica(id, variant)
		}
	} else {
		// The payload digest is taken on the loop (memoizing the batch
		// digest before the message is shared); the signature/MAC vector is
		// computed on the egress pool and the broadcast released in order.
		payload := m.SignedPayload()
		r.rt.Egress.Enqueue(
			func() { m.Auth = r.rt.AuthBroadcast(payload) },
			func() { r.rt.Broadcast(m) },
			nil)
	}
	r.handlePropose(r.rt.Cfg.ID, m)
}

// --- backup: support ---

func (r *Replica) onPropose(from types.NodeID, m *Propose) {
	if !from.IsReplica() {
		return
	}
	r.handlePropose(from.Replica(), m)
}

func (r *Replica) handlePropose(from types.ReplicaID, m *Propose) {
	cfg := r.rt.Cfg
	if r.status != statusNormal || m.View != r.view || from != cfg.Primary(r.view) {
		return
	}
	lastExec := r.rt.Exec.LastExecuted()
	if m.Seq <= lastExec {
		return
	}
	// High watermark: bound how far ahead of execution proposals are
	// accepted (the paper's active-set watermarks, §II-F).
	if m.Seq > lastExec+types.SeqNum(8*cfg.Window) {
		return
	}
	s := r.slot(m.Seq)
	if s.haveBatch {
		return // only the first k-th proposal in a view is supported (Fig 3, Line 12)
	}
	// Broadcast authenticator and per-request client signatures were already
	// verified by the authentication pipeline (verify.go); an invalid
	// proposal never reaches this point.
	s.view = m.View
	s.haveBatch = true
	s.batch = m.Batch
	s.digest = types.ProposalDigest(m.Seq, m.View, m.Batch.Digest())
	// Register the SUPPORT payload so the pipeline verifies incoming shares
	// for this slot off the event loop.
	r.rt.Pipeline.NoteDigest(kindSupport, m.View, m.Seq, s.digest[:])
	s.supported = true
	// The SUPPORT share is this replica's signature over the slot digest:
	// computed on the egress pool, released to the wire in order, and —
	// when this replica collects certificates itself — looped back onto the
	// event loop to count toward the slot's quorum. The loop-back re-checks
	// view and status: it runs later than this handler, and the slot may
	// have been abandoned by a view change in between.
	sup := &Support{View: m.View, Seq: m.Seq}
	digest := s.digest
	macMode := cfg.Scheme == crypto.SchemeMAC || cfg.Scheme == crypto.SchemeNone
	toPrimary := !macMode && !r.isPrimary()
	primary := r.primaryNode()
	collector := macMode || r.isPrimary()
	view := m.View
	var local func()
	if collector {
		local = func() {
			if r.status == statusNormal && r.view == view {
				r.addSupport(cfg.ID, sup, s)
			}
		}
	}
	r.rt.Egress.Enqueue(
		func() { sup.Share = r.rt.TS.Share(digest[:]) },
		func() {
			if macMode {
				// MAC instantiation (Appendix A): SUPPORT is broadcast
				// all-to-all and every replica assembles the certificate.
				r.rt.Broadcast(sup)
			} else if toPrimary {
				// TS instantiation: SUPPORT goes to the primary only.
				r.rt.Net.Send(primary, sup)
			}
		},
		local)
	if s.pendingCert != nil {
		cert := s.pendingCert
		s.pendingCert = nil
		r.handleCertify(cert, s)
	}
	// Validate shares stashed by onSupport before this proposal fixed the
	// digest, dropping mismatches; the survivors may already reach the
	// threshold on their own.
	for id, sh := range s.shares {
		if id != cfg.ID && !r.rt.TS.VerifyShare(s.digest[:], sh) {
			delete(s.shares, id)
		}
	}
	r.trySupported(m.Seq, s)
}

func (r *Replica) slot(seq types.SeqNum) *slot {
	s, ok := r.slots[seq]
	if !ok {
		s = &slot{shares: make(map[types.ReplicaID]crypto.Share), created: time.Now()}
		r.slots[seq] = s
	}
	return s
}

func (r *Replica) onSupport(from types.NodeID, m *Support) {
	if !from.IsReplica() || r.status != statusNormal || m.View != r.view {
		return
	}
	if m.Share.Signer != from.Replica() {
		return
	}
	cfg := r.rt.Cfg
	collector := cfg.Scheme == crypto.SchemeMAC || cfg.Scheme == crypto.SchemeNone || r.isPrimary()
	if !collector {
		return
	}
	lastExec := r.rt.Exec.LastExecuted()
	if m.Seq <= lastExec || m.Seq > lastExec+types.SeqNum(8*cfg.Window) {
		return
	}
	// The slot is created even when the proposal has not arrived yet: the
	// verify pipeline dispatches small SUPPORT messages ahead of large
	// proposals, and supports are sent exactly once — dropping an early one
	// permanently costs a share. With a replica down the collector holds
	// exactly nf live shares, so one dropped share wedges the slot forever
	// (the stall the process-level kill/restart battery exposed).
	r.addSupport(from.Replica(), m, r.slot(m.Seq))
}

func (r *Replica) addSupport(from types.ReplicaID, m *Support, s *slot) {
	if s.committed {
		return
	}
	if _, dup := s.shares[from]; dup {
		return
	}
	// Each share is validated at most once per slot. With the digest fixed,
	// validation happens here, at insertion (the pipeline usually proved it
	// already, making the check a memo hit): an invalid share is rejected
	// before it can occupy the slot, and a Byzantine retry can never force
	// the honest shares through another round of verification — the failure
	// mode that used to make a bad combine O(n²) in signature checks. Before
	// the proposal arrives there is no digest to check against; the share is
	// stashed and handlePropose validates the stash once the digest is
	// fixed. Our own share needs no check.
	if s.haveBatch && from != r.rt.Cfg.ID && !r.rt.TS.VerifyShare(s.digest[:], m.Share) {
		return
	}
	s.shares[from] = m.Share
	r.trySupported(m.Seq, s)
}

// trySupported fires once the slot has the batch, this replica has
// transmitted its own SUPPORT (Fig 3 requires it before view-committing),
// and nf validated shares are collected.
func (r *Replica) trySupported(seq types.SeqNum, s *slot) {
	if s.committed || !s.haveBatch || !s.supported || len(s.shares) < r.rt.Cfg.NF() {
		return
	}
	shares := make([]crypto.Share, 0, len(s.shares))
	for _, sh := range s.shares {
		shares = append(shares, sh)
	}
	// Every collected share is pre-validated, so Combine (re-checking via
	// the share memo) succeeds whenever the threshold count is met.
	cert, err := r.rt.TS.Combine(s.digest[:], shares)
	if err != nil {
		return
	}
	switch r.rt.Cfg.Scheme {
	case crypto.SchemeMAC, crypto.SchemeNone:
		// Every replica reached the certificate locally; commit directly.
		r.commitSlot(seq, s, cert)
	default:
		// TS mode: the primary distributes the certificate.
		if r.byz == nil || !r.byz.SilenceCertify(seq) {
			r.rt.Broadcast(&Certify{View: r.view, Seq: seq, Digest: s.digest, Cert: cert})
		}
		r.commitSlot(seq, s, cert)
	}
}

func (r *Replica) onCertify(from types.NodeID, m *Certify) {
	if !from.IsReplica() || r.status != statusNormal || m.View != r.view {
		return
	}
	if from.Replica() != r.rt.Cfg.Primary(r.view) {
		return
	}
	s := r.slot(m.Seq)
	r.handleCertify(m, s)
}

func (r *Replica) handleCertify(m *Certify, s *slot) {
	if s.committed {
		return
	}
	if !s.haveBatch || !s.supported {
		// The proposal may still be in flight; remember the certificate
		// (Fig 3 requires the replica to have transmitted SUPPORT before
		// view-committing). A valid certificate also proves the decision
		// happened without us — the malicious primary may be keeping this
		// replica in the dark (Example 3(2)) — so start state transfer.
		s.pendingCert = m
		if r.rt.TS.Verify(m.Digest[:], m.Cert) {
			r.fetchFrom(r.rt.Exec.LastExecuted())
		}
		return
	}
	if s.digest != m.Digest || !r.rt.TS.Verify(m.Digest[:], m.Cert) {
		return
	}
	r.commitSlot(m.Seq, s, m.Cert)
}

// commitSlot logs VCommitR (Fig 3, Line 18) and schedules speculative
// execution.
func (r *Replica) commitSlot(seq types.SeqNum, s *slot, cert []byte) {
	if s.committed {
		return
	}
	s.committed = true
	r.lastProgress = time.Now()
	events := r.rt.Exec.Commit(seq, s.view, s.batch, cert)
	r.afterExecution(events)
}

// afterExecution handles executor events: INFORM the clients (Fig 3,
// Line 23), update metrics, trigger checkpoints, clear failure-detection
// state, discard retired slots, and let the primary propose into the freed
// window.
func (r *Replica) afterExecution(events []protocol.Executed) {
	if len(events) == 0 {
		return
	}
	for _, ev := range events {
		r.lastProgress = time.Now()
		r.rt.Metrics.ExecutedBatches.Add(1)
		r.rt.Metrics.ExecutedTxns.Add(int64(ev.Rec.Batch.Size()))
		r.rt.InformBatch(ev.Rec, ev.Results, false, types.ZeroDigest)
		for i := range ev.Rec.Batch.Requests {
			txn := &ev.Rec.Batch.Requests[i].Txn
			if txn.Seq > r.execHigh[txn.Client] {
				r.execHigh[txn.Client] = txn.Seq
			}
			delete(r.pendingReqs, ev.Rec.Batch.Requests[i].Digest())
		}
		delete(r.slots, ev.Rec.Seq)
		r.rt.Pipeline.ForgetDigests(ev.Rec.View, ev.Rec.Seq)
		r.rt.MaybeCheckpoint(ev.Rec.Seq)
	}
	r.proposeReady(false)
	if r.status == statusNormal {
		// Execution progress is the under-load lease carrier (renewals ride
		// next to the checkpoint broadcast) and the moment deferred STRONG
		// reads may have caught up.
		r.rt.MaybeGrantLease(r.view, false)
		r.drainStrongReads(time.Now())
	}
}

// --- housekeeping ---

func (r *Replica) onTick() {
	now := time.Now()
	if r.catchup {
		r.catchup = false
		r.fetchFrom(r.rt.Exec.LastExecuted())
	}
	// Snapshot state transfer runs in every status: a replica too far behind
	// for Fetch needs it exactly when it cannot follow the normal case.
	r.rt.Sync.Tick(now)
	switch r.status {
	case statusNormal:
		if r.isPrimary() && r.rt.Batcher.Ripe(now) {
			r.proposeReady(true)
		}
		r.maybeFetch()
		r.drainStrongReads(now)
		suspect := r.suspectPrimary(now)
		// A suspecting replica stops renewing its lease grant, so the
		// primary's outstanding lease drains within one LeaseDuration.
		r.rt.MaybeGrantLease(r.view, suspect)
		if suspect {
			r.startViewChange(r.view + 1)
		}
	case statusViewChange:
		// Keep catching up during the view change: FetchReply commits are
		// processed in any status.
		r.maybeFetch()
		// Un-suspect: if execution progressed past where it was when we
		// suspected the primary and nobody joined our view change, the
		// current view is demonstrably live — we were merely in the dark.
		// Rejoin it instead of stalling in a lonely view change.
		if r.rt.Exec.LastExecuted() > r.vcExecMark && len(r.vcVotes[r.vcTarget]) < r.rt.Cfg.FPlus1() {
			r.resumeNormal(now)
			r.curTimeout = r.rt.Cfg.ViewTimeout
			return
		}
		if now.Sub(r.vcStarted) > r.curTimeout {
			if len(r.vcVotes[r.vcTarget]) < r.rt.Cfg.FPlus1() {
				// Lonely view change timed out: not even f other replicas
				// suspect the primary, so at least one non-faulty replica is
				// content with the current view — our own suspicion was
				// spurious. Escalating would strand this replica dropping
				// every message of a live view (fatal when it is needed for
				// quorum). Return to normal — curTimeout stays doubled, so
				// repeated spurious suspicion decays — and fetch: any slot we
				// were suspicious about may have committed without us while
				// we were view-changing (our share was already spent, so only
				// the executed record can close it now).
				r.resumeNormal(now)
				r.fetchFrom(r.rt.Exec.LastExecuted())
				return
			}
			// The view change itself failed (the next primary is also
			// faulty or unreachable): move one view further with a doubled
			// timeout (exponential backoff, Theorem 7).
			r.startViewChange(r.vcTarget + 1)
		} else if now.Sub(r.vcResent) > r.rt.Cfg.ViewTimeout {
			r.broadcastVC(r.vcTarget)
			r.maybeProposeNewView(r.vcTarget)
		}
	}
}

// resumeNormal abandons a pending view change and rejoins the current view.
// The failure-detection clock restarts from scratch: outstanding work gets a
// fresh full timeout of observation in normal status before it can justify
// suspicion again — without this the still-stale marks re-trigger the view
// change on the very next tick, leaving only a tick-wide window to actually
// process messages.
func (r *Replica) resumeNormal(now time.Time) {
	r.status = statusNormal
	r.lastProgress = now
	for d, p := range r.pendingReqs {
		p.since = now
		r.pendingReqs[d] = p
	}
	for _, s := range r.slots {
		s.created = now
	}
}

// suspectPrimary reports whether outstanding work has been stuck beyond the
// current timeout. The item itself must be older than the timeout, not just
// lastProgress: after an idle period lastProgress is arbitrarily stale, and
// work that arrives into that lull (the first proposal after a quiet spell,
// a request forwarded to a freshly elected primary) must get a full timeout
// of grace before it counts as evidence of a faulty primary. Without the
// per-item age check the primary proposes into the lull and the very next
// tick view-changes — before the supports for that proposal can possibly
// have returned — stranding it in a lonely view change.
func (r *Replica) suspectPrimary(now time.Time) bool {
	if now.Sub(r.lastProgress) <= r.curTimeout {
		return false
	}
	for _, p := range r.pendingReqs {
		if now.Sub(p.since) > r.curTimeout {
			return true
		}
	}
	lastExec := r.rt.Exec.LastExecuted()
	for seq, s := range r.slots {
		if seq > lastExec && now.Sub(s.created) > r.curTimeout {
			return true
		}
	}
	if _, _, gapped := r.rt.Exec.Gap(); gapped {
		return true
	}
	return false
}

// maybeFetch requests state transfer when decided batches are stuck behind
// missing predecessors (a replica left in the dark, §II-D).
func (r *Replica) maybeFetch() {
	after, _, gapped := r.rt.Exec.Gap()
	if !gapped {
		return
	}
	r.fetchFrom(after)
}

// fetchFrom asks the next peer (round-robin) for executed records above
// after.
func (r *Replica) fetchFrom(after types.SeqNum) {
	r.rt.FetchFrom(after)
}

func (r *Replica) onFetchReply(m *protocol.FetchReply) {
	for i := range m.Records {
		rec := &m.Records[i]
		if rec.Digest != rec.Batch.Digest() {
			continue
		}
		h := types.ProposalDigest(rec.Seq, rec.View, rec.Digest)
		if !r.rt.TS.Verify(h[:], rec.Proof) {
			continue
		}
		events := r.rt.Exec.Commit(rec.Seq, rec.View, rec.Batch, rec.Proof)
		r.afterExecution(events)
	}
	// Paginated transfer: a server whose head is still ahead has more pages.
	r.rt.FetchContinue(m.Head)
}

// afterInstall resumes the protocol around an installed snapshot: per-slot
// state the snapshot superseded is discarded, sequencing and view jump
// forward, and the ordinary record fetch bridges snapshot → live head.
func (r *Replica) afterInstall(snap *storage.Snapshot, events []protocol.Executed) {
	for seq := range r.slots {
		if seq <= snap.Seq {
			delete(r.slots, seq)
		}
	}
	if r.nextPropose <= snap.Seq {
		r.nextPropose = snap.Seq + 1
	}
	if snap.Head.View > r.view {
		r.view = snap.Head.View
		r.status = statusNormal
	}
	r.lastProgress = time.Now()
	r.curTimeout = r.rt.Cfg.ViewTimeout
	// Requests executed inside the snapshot prefix never pass through
	// afterExecution here, so their pending entries would go stale and feed
	// the failure detector. Drop them all: clients retry anything genuinely
	// outstanding, which re-tracks it with a fresh timer.
	r.pendingReqs = make(map[types.Digest]pendingReq)
	r.afterExecution(events)
	r.fetchFrom(r.rt.Exec.LastExecuted())
}
