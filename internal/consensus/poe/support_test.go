package poe

import (
	"testing"
	"time"

	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/types"
)

// TestByzantineSupportShareVerifiedOncePerSlot drives the primary's support
// path by hand: a Byzantine share arrives first, then the honest shares. The
// slot must still commit, the Byzantine share must never occupy it, and —
// the regression this pins — no share may be Ed25519-verified more than once
// for the slot. Before the parallel-authentication refactor a failed combine
// re-verified every retained share on each subsequent support, letting one
// Byzantine replica inflate the primary's crypto cost to O(n²) per slot.
func TestByzantineSupportShareVerifiedOncePerSlot(t *testing.T) {
	net := network.NewChanNet()
	defer net.Close()
	ring := crypto.NewKeyRing(4, []byte("support-test"))
	cfg := protocol.Config{
		ID: 0, N: 4, F: 1, Scheme: crypto.SchemeTS,
		BatchSize: 1, BatchLinger: time.Millisecond,
		Window: 8, CheckpointInterval: 8, ViewTimeout: time.Second,
	}
	r, err := New(cfg, ring, net.Join(types.ReplicaNode(0)), Options{})
	if err != nil {
		t.Fatal(err)
	}

	// The primary proposes an (empty) batch; it contributes its own share.
	m := &Propose{View: 0, Seq: 1, Batch: types.Batch{}}
	m.Auth = r.rt.AuthBroadcast(m.SignedPayload())
	r.handlePropose(0, m)

	digest := types.ProposalDigest(1, 0, m.Batch.Digest())
	shareFrom := func(id types.ReplicaID, msg []byte) crypto.Share {
		return crypto.NewThresholdScheme(ring, id, cfg.NF(), true).Share(msg)
	}

	base := crypto.EdVerifyCount()
	// Byzantine replica 1: a well-formed share over the wrong digest.
	r.onSupport(types.ReplicaNode(1), &Support{View: 0, Seq: 1, Share: shareFrom(1, []byte("wrong"))})
	if _, held := r.slot(1).shares[1]; held {
		t.Fatal("byzantine share occupied the slot")
	}
	// Honest replicas 2 and 3 push the slot over the nf = 3 threshold.
	r.onSupport(types.ReplicaNode(2), &Support{View: 0, Seq: 1, Share: shareFrom(2, digest[:])})
	r.onSupport(types.ReplicaNode(3), &Support{View: 0, Seq: 1, Share: shareFrom(3, digest[:])})

	if r.rt.Exec.LastExecuted() != 1 {
		t.Fatalf("slot did not commit: last executed %d", r.rt.Exec.LastExecuted())
	}
	// Raw verification budget for the slot: the Byzantine share (1, fails),
	// the two honest remote shares at insertion (2), and the primary's own
	// share inside Combine (1). The honest remote shares are memo hits in
	// Combine — never re-verified.
	if d := crypto.EdVerifyCount() - base; d != 4 {
		t.Fatalf("slot cost %d raw Ed25519 verifications, want 4 (one per share)", d)
	}
}
