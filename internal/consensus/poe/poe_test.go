package poe

import (
	"context"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"github.com/poexec/poe/internal/client"
	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/types"
)

// cluster is a test fixture: n PoE replicas on an in-process network.
type cluster struct {
	t        *testing.T
	net      *network.ChanNet
	ring     *crypto.KeyRing
	replicas []*Replica
	cfgs     []protocol.Config
	cancel   context.CancelFunc
}

func startCluster(t *testing.T, n, f int, scheme crypto.Scheme, mutate func(id types.ReplicaID, opts *Options)) *cluster {
	t.Helper()
	net := network.NewChanNet()
	ring := crypto.NewKeyRing(n, []byte("test-seed"))
	ctx, cancel := context.WithCancel(context.Background())
	c := &cluster{t: t, net: net, ring: ring, cancel: cancel}
	for i := 0; i < n; i++ {
		cfg := protocol.Config{
			ID: types.ReplicaID(i), N: n, F: f, Scheme: scheme,
			BatchSize: 1, BatchLinger: time.Millisecond,
			Window: 32, CheckpointInterval: 8,
			ViewTimeout: 200 * time.Millisecond,
		}
		opts := Options{}
		if mutate != nil {
			mutate(cfg.ID, &opts)
		}
		tr := net.Join(types.ReplicaNode(cfg.ID))
		r, err := New(cfg, ring, tr, opts)
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		c.replicas = append(c.replicas, r)
		c.cfgs = append(c.cfgs, cfg)
		go r.Run(ctx)
	}
	t.Cleanup(func() {
		cancel()
		net.Close()
	})
	return c
}

func (c *cluster) newClient(i int, quorum int) *client.Client {
	c.t.Helper()
	cfg := c.cfgs[0]
	id := types.ClientID(types.ClientIDBase) + types.ClientID(i)
	cl, err := client.New(client.Config{
		ID: id, N: cfg.N, F: cfg.F, Scheme: cfg.Scheme,
		Quorum:  quorum,
		Timeout: 250 * time.Millisecond,
	}, c.ring, c.net.Join(types.ClientNode(id)))
	if err != nil {
		c.t.Fatalf("client: %v", err)
	}
	cl.Start(context.Background())
	return cl
}

// awaitConvergence waits until all live replicas report the same last
// executed sequence number ≥ want and equal state digests.
func (c *cluster) awaitConvergence(want types.SeqNum, skip map[types.ReplicaID]bool, within time.Duration) {
	c.t.Helper()
	deadline := time.Now().Add(within)
	for {
		var digests []types.Digest
		var seqs []types.SeqNum
		ok := true
		for i, r := range c.replicas {
			if skip[types.ReplicaID(i)] {
				continue
			}
			seq := r.Runtime().Exec.LastExecuted()
			seqs = append(seqs, seq)
			digests = append(digests, r.Runtime().Exec.StateDigest())
			if seq < want {
				ok = false
			}
		}
		if ok {
			for _, d := range digests[1:] {
				if d != digests[0] {
					ok = false
					break
				}
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("no convergence: seqs=%v want=%d", seqs, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func writeOp(key string, val string) []types.Op {
	return []types.Op{{Kind: types.OpWrite, Key: key, Value: []byte(val)}}
}

func testNormalCase(t *testing.T, scheme crypto.Scheme) {
	c := startCluster(t, 4, 1, scheme, nil)
	cl := c.newClient(0, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	const txns = 20
	for i := 0; i < txns; i++ {
		if _, err := cl.Submit(ctx, writeOp(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	c.awaitConvergence(txns, nil, 5*time.Second)
	// Every replica's ledger must verify and agree on the head.
	var heads []types.Digest
	for _, r := range c.replicas {
		chain := r.Runtime().Exec.Chain()
		if seq, ok := chain.Verify(); !ok {
			t.Fatalf("broken ledger at seq %d", seq)
		}
		head := chain.Head()
		heads = append(heads, head.Hash())
	}
	for _, h := range heads[1:] {
		if h != heads[0] {
			t.Fatalf("divergent ledger heads")
		}
	}
	// The written values must be visible.
	for _, r := range c.replicas {
		v, ok := r.Runtime().Exec.Store().Get("k19")
		if !ok || string(v) != "v19" {
			t.Fatalf("missing write on replica: %q %v", v, ok)
		}
	}
}

func TestNormalCaseTS(t *testing.T)  { testNormalCase(t, crypto.SchemeTS) }
func TestNormalCaseMAC(t *testing.T) { testNormalCase(t, crypto.SchemeMAC) }
func TestNormalCaseED(t *testing.T)  { testNormalCase(t, crypto.SchemeED) }
func TestNormalCaseNone(t *testing.T) {
	testNormalCase(t, crypto.SchemeNone)
}

func TestBackupFailure(t *testing.T) {
	c := startCluster(t, 4, 1, crypto.SchemeTS, nil)
	// Crash a backup (not the view-0 primary, replica 0).
	c.net.Crash(types.ReplicaNode(3))
	cl := c.newClient(0, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 10; i++ {
		if _, err := cl.Submit(ctx, writeOp(fmt.Sprintf("k%d", i), "v")); err != nil {
			t.Fatalf("submit %d under backup failure: %v", i, err)
		}
	}
	c.awaitConvergence(10, map[types.ReplicaID]bool{3: true}, 5*time.Second)
}

func TestPrimaryFailureViewChange(t *testing.T) {
	c := startCluster(t, 4, 1, crypto.SchemeTS, nil)
	cl := c.newClient(0, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	// Commit some work under the initial primary.
	for i := 0; i < 5; i++ {
		if _, err := cl.Submit(ctx, writeOp(fmt.Sprintf("pre%d", i), "v")); err != nil {
			t.Fatalf("submit pre-%d: %v", i, err)
		}
	}
	// Kill the primary of view 0 (replica 0) and keep submitting: clients
	// time out, broadcast, backups detect the failure and elect replica 1.
	c.net.Crash(types.ReplicaNode(0))
	for i := 0; i < 5; i++ {
		if _, err := cl.Submit(ctx, writeOp(fmt.Sprintf("post%d", i), "v")); err != nil {
			t.Fatalf("submit post-%d: %v", i, err)
		}
	}
	skip := map[types.ReplicaID]bool{0: true}
	c.awaitConvergence(10, skip, 10*time.Second)
	for i := 1; i < 4; i++ {
		if v := c.replicas[i].View(); v == 0 {
			t.Fatalf("replica %d still in view 0 after primary crash", i)
		}
		if got := c.replicas[i].Runtime().Metrics.ViewChanges.Load(); got == 0 {
			t.Fatalf("replica %d recorded no view change", i)
		}
	}
}

// equivocator sends conflicting batches to odd and even replicas:
// Example 3(1). The variant comes from protocol.EquivocateBatch, so its
// digest genuinely differs while every client signature stays valid — an
// equivocation honest verifiers accept rather than drop.
type equivocator struct{}

func (equivocator) ProposeTo(to types.ReplicaID, p *Propose) *Propose {
	if to%2 == 0 {
		return p
	}
	alt := *p
	alt.Batch = protocol.EquivocateBatch(p.Batch)
	return &alt
}

func (equivocator) SilenceCertify(types.SeqNum) bool { return false }

func TestSafetyUnderEquivocation(t *testing.T) {
	// Replica 0 (primary of view 0) equivocates. With n=4, no two non-faulty
	// replicas may execute different batches at the same sequence number
	// (Proposition 2); progress resumes after a view change.
	c := startCluster(t, 4, 1, crypto.SchemeTS, func(id types.ReplicaID, opts *Options) {
		if id == 0 {
			opts.Byz = equivocator{}
		}
	})
	cl := c.newClient(0, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		if _, err := cl.Submit(ctx, writeOp(fmt.Sprintf("k%d", i), "v")); err != nil {
			t.Fatalf("submit %d under equivocation: %v", i, err)
		}
	}
	// Compare executed batch digests pairwise among replicas 1..3 for every
	// sequence number both executed.
	recs := make([]map[types.SeqNum]types.Digest, 4)
	for i := 1; i < 4; i++ {
		recs[i] = make(map[types.SeqNum]types.Digest)
		chain := c.replicas[i].Runtime().Exec.Chain()
		for seq := types.SeqNum(1); seq <= chain.Head().Seq; seq++ {
			if b, ok := chain.Get(seq); ok {
				recs[i][seq] = b.Digest
			}
		}
	}
	for i := 1; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			for seq, d := range recs[i] {
				if d2, ok := recs[j][seq]; ok && d != d2 {
					t.Fatalf("divergence at seq %d between replicas %d and %d", seq, i, j)
				}
			}
		}
	}
}

// darkener keeps replica 3 in the dark: Example 3(2) of the paper. The
// remaining nf replicas still commit; the dark replica recovers via state
// transfer when it sees certificates it has no proposals for.
type darkener struct{}

func (darkener) ProposeTo(to types.ReplicaID, p *Propose) *Propose {
	if to == 3 {
		return nil
	}
	return p
}

func (darkener) SilenceCertify(types.SeqNum) bool { return false }

func TestDarkReplicaCatchesUp(t *testing.T) {
	c := startCluster(t, 4, 1, crypto.SchemeTS, func(id types.ReplicaID, opts *Options) {
		if id == 0 {
			opts.Byz = darkener{}
		}
	})
	cl := c.newClient(0, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for i := 0; i < 10; i++ {
		if _, err := cl.Submit(ctx, writeOp(fmt.Sprintf("k%d", i), "v")); err != nil {
			t.Fatalf("submit %d with dark replica: %v", i, err)
		}
	}
	// The dark replica must converge via Fetch-based state transfer.
	c.awaitConvergence(10, nil, 10*time.Second)
}

// silencer suppresses all CERTIFY broadcasts: replicas support but never
// view-commit, so the failure detector must fire and replace the primary.
type silencer struct{}

func (silencer) ProposeTo(_ types.ReplicaID, p *Propose) *Propose { return p }
func (silencer) SilenceCertify(types.SeqNum) bool                 { return true }

func TestSilencedCertifyTriggersViewChange(t *testing.T) {
	c := startCluster(t, 4, 1, crypto.SchemeTS, func(id types.ReplicaID, opts *Options) {
		if id == 0 {
			opts.Byz = silencer{}
		}
	})
	cl := c.newClient(0, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		if _, err := cl.Submit(ctx, writeOp(fmt.Sprintf("k%d", i), "v")); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	for i := 1; i < 4; i++ {
		if c.replicas[i].View() == 0 {
			t.Fatalf("replica %d still in view 0 under a silent-certify primary", i)
		}
	}
}

func TestCheckpointsTruncateUndoLog(t *testing.T) {
	c := startCluster(t, 4, 1, crypto.SchemeTS, nil)
	cl := c.newClient(0, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// CheckpointInterval is 8 in the fixture; push well past it.
	for i := 0; i < 30; i++ {
		if _, err := cl.Submit(ctx, writeOp(fmt.Sprintf("k%d", i), "v")); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		stable := true
		for _, r := range c.replicas {
			if r.Runtime().Exec.StableCheckpointSeq() < 8 {
				stable = false
			}
		}
		if stable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no stable checkpoint formed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i, r := range c.replicas {
		if undo := r.Runtime().Exec.Store().UndoLen(); undo > 30 {
			t.Fatalf("replica %d undo log not truncated: %d entries", i, undo)
		}
	}
}

// TestQuickNewViewChoiceDeterministic: every replica must derive the same
// E' from the same NV-PROPOSE regardless of request order — otherwise the
// new view would fork.
func TestQuickNewViewChoiceDeterministic(t *testing.T) {
	f := func(stables []uint8, lens []uint8, perm uint8) bool {
		n := len(stables)
		if n > len(lens) {
			n = len(lens)
		}
		if n < 2 {
			return true
		}
		reqs := make([]VCRequest, n)
		for i := 0; i < n; i++ {
			reqs[i] = VCRequest{From: types.ReplicaID(i), StableSeq: types.SeqNum(stables[i])}
			for j := 0; j < int(lens[i]%8); j++ {
				reqs[i].Executed = append(reqs[i].Executed, types.ExecRecord{
					Seq: reqs[i].StableSeq + types.SeqNum(j) + 1,
				})
			}
		}
		a := chooseNewViewState(reqs)
		// Rotate the slice: the choice must not depend on order.
		k := int(perm) % n
		rotated := append(append([]VCRequest(nil), reqs[k:]...), reqs[:k]...)
		b := chooseNewViewState(rotated)
		return a.From == b.From && a.StableSeq == b.StableSeq && len(a.Executed) == len(b.Executed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
