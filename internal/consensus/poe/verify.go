package poe

import (
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/types"
)

// This file is PoE's hook into the parallel authentication pipeline
// (protocol.Verifier): every inbound message's asymmetric crypto is checked
// here, on pipeline worker goroutines, before dispatch reaches the replica's
// event loop. Handlers in replica.go therefore never verify broadcast
// authenticators or client signatures themselves — delivery implies they
// were valid — and share/certificate checks they do issue resolve through
// the crypto layer's memo, warmed here.
//
// verifyInbound must not touch replica state (it runs concurrently with the
// event loop); it reads only the immutable runtime pieces and the pipeline's
// digest table.

// kindSupport keys the SUPPORT-phase share payload h = D(k||v||D(batch)) in
// the pipeline's digest table.
const kindSupport uint8 = 0

func (r *Replica) verifyInbound(env *network.Envelope) bool {
	rt := r.rt
	if keep, handled := rt.VerifyCommonInbound(env); handled {
		return keep
	}
	switch m := env.Msg.(type) {
	case *Propose:
		// A replica's own messages reach its handlers by direct call, never
		// over the network: an inbound envelope claiming our identity is a
		// spoof, not a loopback.
		if !env.From.IsReplica() || env.From.Replica() == rt.Cfg.ID {
			return false
		}
		p := m
		if !env.Owned {
			// In-process transports share the sender's pointer; clone before
			// digest memoization. Wire-decoded envelopes are already owned.
			cp := *m
			cp.Batch = m.Batch.Clone()
			env.Msg = &cp
			p = &cp
		}
		if !rt.VerifyBroadcast(env.From.Replica(), p.SignedPayload(), p.Auth) {
			return false
		}
		return rt.VerifyBatch(&p.Batch)
	case *Support:
		if !env.From.IsReplica() || m.Share.Signer != env.From.Replica() || m.Share.Signer == rt.Cfg.ID {
			return false
		}
		// If the slot digest is already registered the share is proven (or
		// dropped) here; otherwise it passes through and the event loop
		// verifies it at insertion via the share memo.
		return rt.Pipeline.VerifyShareFor(rt.TS, kindSupport, m.View, m.Seq, m.Share)
	case *Certify:
		// Certificates authenticate themselves (§II-E): prove it here so the
		// handler's re-check is a memo hit.
		return env.From.IsReplica() && rt.TS.Verify(m.Digest[:], m.Cert)
	case *VCRequest:
		// Signature and per-entry certificates are validated by the view-
		// change path on the event loop (rare, off the normal case); clone so
		// digest memoization stays replica-local — unless the envelope is
		// already owned (wire-decoded), in which case memoize in place.
		if env.Owned {
			memoizeRecords(m.Executed)
			return true
		}
		cp := *m
		cp.Executed = types.CloneRecords(m.Executed)
		memoizeRecords(cp.Executed)
		env.Msg = &cp
		return true
	case *NVPropose:
		if env.Owned {
			for i := range m.Requests {
				memoizeRecords(m.Requests[i].Executed)
			}
			return true
		}
		cp := *m
		cp.Requests = append([]VCRequest(nil), m.Requests...)
		for i := range cp.Requests {
			cp.Requests[i].Executed = types.CloneRecords(cp.Requests[i].Executed)
			memoizeRecords(cp.Requests[i].Executed)
		}
		env.Msg = &cp
		return true
	}
	return true
}

func memoizeRecords(recs []types.ExecRecord) {
	for i := range recs {
		recs[i].Batch.MemoizeDigests()
	}
}
