package poe

import (
	"fmt"
	"sort"
	"time"

	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/types"
)

// This file implements the view-change algorithm of §II-C (Fig 5):
//
//  1. Failure detection: a replica that suspects the primary (timeout, or
//     f+1 VC-REQUESTs from others — the join rule) halts the normal-case
//     algorithm and broadcasts VC-REQUEST(v, E) with its execution summary.
//  2. New-view proposal: the next primary collects nf valid VC-REQUESTs and
//     broadcasts them in NV-PROPOSE.
//  3. Move to the new view: each replica picks the request with the longest
//     consecutive sequence of executed transactions E′, rolls back any
//     speculatively executed transactions not in E′, executes the missing
//     ones, and enters the new view at kmax+1.

// startViewChange halts normal processing and requests a move to target.
func (r *Replica) startViewChange(target types.View) {
	if target <= r.view {
		return
	}
	if r.status == statusViewChange && target <= r.vcTarget {
		return
	}
	if !r.rt.Lease.CanAdvanceView(target) {
		// An outstanding read-lease promise forbids joining a higher view
		// until it expires (at most one LeaseDuration). Every initiation path
		// retries — the tick re-suspects, VC-REQUESTs are retransmitted — so
		// the view change is delayed, never lost. Applying a completed
		// NV-PROPOSE is never gated: nf replicas advancing proves the lease
		// quorum already drained.
		return
	}
	r.status = statusViewChange
	r.vcTarget = target
	r.vcStarted = time.Now()
	r.vcExecMark = r.rt.Exec.LastExecuted()
	r.curTimeout *= 2 // exponential backoff (Theorem 7)
	r.rt.Metrics.ViewChanges.Add(1)
	if r.sentVC[target] {
		return
	}
	r.sentVC[target] = true
	r.broadcastVC(target)
	r.maybeProposeNewView(target)
}

// broadcastVC signs and broadcasts this replica's view-change request for
// target. Called on entry and then periodically while the view change is
// pending: VIEW-CHANGE messages lost to a partition are not otherwise
// retransmitted, and the new-view primary cannot assemble its quorum
// without them.
func (r *Replica) broadcastVC(target types.View) {
	r.vcResent = time.Now()
	stable := r.rt.Exec.StableCheckpointSeq()
	req := &VCRequest{
		From:      r.rt.Cfg.ID,
		View:      target - 1,
		StableSeq: stable,
		Executed:  r.rt.Exec.ExecutedSince(stable),
	}
	req.Sig = r.rt.Keys.Sign(req.SignedPayload())
	r.recordVCVote(req)
	r.rt.Broadcast(req)
}

func (r *Replica) recordVCVote(m *VCRequest) {
	target := m.View + 1
	votes, ok := r.vcVotes[target]
	if !ok {
		votes = make(map[types.ReplicaID]*VCRequest)
		r.vcVotes[target] = votes
	}
	if _, dup := votes[m.From]; !dup {
		votes[m.From] = m
	}
}

// validateVCRequest checks the signature, the consecutiveness of the
// execution summary, and every per-entry certificate.
func (r *Replica) validateVCRequest(m *VCRequest) bool {
	if m.From < 0 || int(m.From) >= r.rt.Cfg.N {
		return false
	}
	if !r.rt.Keys.VerifyFrom(types.ReplicaNode(m.From), m.SignedPayload(), m.Sig) {
		return false
	}
	next := m.StableSeq + 1
	for i := range m.Executed {
		e := &m.Executed[i]
		if e.Seq != next {
			return false
		}
		next++
		if e.Digest != e.Batch.Digest() {
			return false
		}
		h := types.ProposalDigest(e.Seq, e.View, e.Digest)
		if !r.rt.TS.Verify(h[:], e.Proof) {
			return false
		}
	}
	return true
}

func (r *Replica) onVCRequest(m *VCRequest) {
	target := m.View + 1
	if target <= r.view {
		// A lagging replica asking for a view we already left (or are in):
		// if we are the primary that installed it, replay the cached
		// NV-PROPOSE so the straggler can catch up.
		if r.lastNV != nil && r.lastNV.NewView >= target && r.rt.Cfg.IsPrimary(r.lastNV.NewView) {
			r.rt.SendReplica(m.From, r.lastNV)
		}
		return
	}
	if !r.validateVCRequest(m) {
		return
	}
	r.recordVCVote(m)
	// Join rule: f+1 distinct requests mean at least one non-faulty replica
	// detected a failure (Fig 5, Line 8).
	if len(r.vcVotes[target]) >= r.rt.Cfg.FPlus1() {
		if r.status == statusNormal || r.vcTarget < target {
			r.startViewChange(target)
		}
	}
	r.joinDivergedViewChange()
	r.maybeProposeNewView(target)
}

// joinDivergedViewChange applies the Castro-Liskov liveness rule: when f+1
// distinct replicas are view-changing to views beyond this replica's own
// target, at least one of them is honest — adopt the smallest such view
// immediately instead of waiting out the (exponentially backed-off) local
// timer. Without it a storm of staggered leader failures can strand the
// replicas on pairwise-different targets, none of which ever gathers a
// quorum.
func (r *Replica) joinDivergedViewChange() {
	cur := r.view
	if r.status == statusViewChange && r.vcTarget > cur {
		cur = r.vcTarget
	}
	voters := make(map[types.ReplicaID]types.View)
	for target, votes := range r.vcVotes {
		if target <= cur {
			continue
		}
		for id := range votes {
			if t, ok := voters[id]; !ok || target < t {
				voters[id] = target
			}
		}
	}
	if len(voters) < r.rt.Cfg.FPlus1() {
		return
	}
	join := types.View(0)
	for _, target := range voters {
		if join == 0 || target < join {
			join = target
		}
	}
	r.startViewChange(join)
	r.maybeProposeNewView(join)
}

// maybeProposeNewView broadcasts NV-PROPOSE once this replica is the next
// primary and holds nf valid view-change requests (Fig 5, Line 18).
func (r *Replica) maybeProposeNewView(target types.View) {
	cfg := r.rt.Cfg
	if !cfg.IsPrimary(target) || r.status != statusViewChange || r.vcTarget != target {
		return
	}
	if r.lastNV != nil && r.lastNV.NewView >= target {
		return
	}
	votes := r.vcVotes[target]
	if len(votes) < cfg.NF() {
		return
	}
	ids := make([]types.ReplicaID, 0, len(votes))
	for id := range votes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	nv := &NVPropose{NewView: target}
	for _, id := range ids[:cfg.NF()] {
		nv.Requests = append(nv.Requests, *votes[id])
	}
	r.lastNV = nv
	r.rt.Broadcast(nv)
	r.applyNVPropose(nv)
}

func (r *Replica) onNVPropose(from types.NodeID, m *NVPropose) {
	if !from.IsReplica() || from.Replica() != r.rt.Cfg.Primary(m.NewView) {
		return
	}
	if m.NewView < r.view || (m.NewView == r.view && r.status == statusNormal) {
		return
	}
	if !r.validateNVPropose(m) {
		// An invalid proposal exposes the new primary as faulty: move on
		// (Fig 5's "otherwise, replicas detect failure of P′").
		r.startViewChange(m.NewView + 1)
		return
	}
	r.applyNVPropose(m)
}

// validateNVPropose re-runs the checks the new primary performed when
// creating the proposal (Fig 5, Line 12).
func (r *Replica) validateNVPropose(m *NVPropose) bool {
	if len(m.Requests) < r.rt.Cfg.NF() {
		return false
	}
	seen := make(map[types.ReplicaID]bool, len(m.Requests))
	for i := range m.Requests {
		req := &m.Requests[i]
		if req.View != m.NewView-1 || seen[req.From] {
			return false
		}
		seen[req.From] = true
		if !r.validateVCRequest(req) {
			return false
		}
	}
	return true
}

// applyNVPropose installs the new view: derive E′ (the longest consecutive
// executed prefix among the nf requests), roll back any divergent or
// surplus speculative execution, schedule the missing batches, and switch.
func (r *Replica) applyNVPropose(m *NVPropose) {
	best := chooseNewViewState(m.Requests)
	kmax := best.StableSeq + types.SeqNum(len(best.Executed))

	myLast := r.rt.Exec.LastExecuted()
	rollbackTo := myLast
	if kmax < rollbackTo {
		// Surplus speculative suffix that did not make it into the new
		// view: revert it (Fig 5, Line 14). Proposition 5 guarantees no
		// client-visible transaction is in this suffix.
		rollbackTo = kmax
	}
	for i := range best.Executed {
		e := &best.Executed[i]
		if e.Seq > rollbackTo {
			break
		}
		if rec, ok := r.rt.Exec.Record(e.Seq); ok && rec.Digest != e.Digest {
			// Divergent speculative execution below kmax; revert from the
			// first mismatch on.
			rollbackTo = e.Seq - 1
			break
		}
	}
	if rollbackTo < myLast {
		if err := r.rt.Exec.Rollback(rollbackTo); err != nil {
			// Rolling below a stable checkpoint would mean nf replicas
			// certified conflicting histories — impossible with n > 3f
			// honest-majority (Proposition 2); surface the broken invariant.
			panic(fmt.Sprintf("poe: view change rollback to %d: %v", rollbackTo, err))
		}
		r.rt.Metrics.Rollbacks.Add(1)
	}

	var events [][]protocol.Executed
	for i := range best.Executed {
		e := &best.Executed[i]
		if e.Seq <= r.rt.Exec.LastExecuted() {
			continue
		}
		evs := r.rt.Exec.Commit(e.Seq, e.View, e.Batch, e.Proof)
		if len(evs) > 0 {
			events = append(events, evs)
		}
	}

	r.enterView(m.NewView, kmax)
	for _, evs := range events {
		r.afterExecution(evs)
	}
}

// chooseNewViewState picks E′: the request with the longest consecutive
// sequence of executed transactions; ties break deterministically so every
// replica derives the same state.
func chooseNewViewState(reqs []VCRequest) *VCRequest {
	best := &reqs[0]
	bestEnd := best.StableSeq + types.SeqNum(len(best.Executed))
	for i := 1; i < len(reqs); i++ {
		req := &reqs[i]
		end := req.StableSeq + types.SeqNum(len(req.Executed))
		switch {
		case end > bestEnd:
			best, bestEnd = req, end
		case end == bestEnd && req.StableSeq > best.StableSeq:
			best = req
		case end == bestEnd && req.StableSeq == best.StableSeq && req.From < best.From:
			best = req
		}
	}
	return best
}

// enterView switches to view v with the order finalized through kmax.
func (r *Replica) enterView(v types.View, kmax types.SeqNum) {
	r.view = v
	r.status = statusNormal
	r.curTimeout = r.rt.Cfg.ViewTimeout
	r.lastProgress = time.Now()
	r.rt.Metrics.ViewChangesDone.Add(1)
	// Grants from the old view must never validate a lease in the new one,
	// and reads the old primary parked can no longer be lease-served.
	r.rt.Lease.ResetHolder(v)
	r.strongQ.FlushAll(r.fallbackRead)
	r.slots = make(map[types.SeqNum]*slot)
	// Every share payload in the pipeline's digest table belongs to the old
	// view's slots; drop them with the slots.
	r.rt.Pipeline.Reset()
	for target := range r.vcVotes {
		if target <= v {
			delete(r.vcVotes, target)
		}
	}
	for target := range r.sentVC {
		if target <= v {
			delete(r.sentVC, target)
		}
	}
	if r.rt.Cfg.IsPrimary(v) {
		// The new primary proposes from kmax+1 (Fig 5, §II-C3). Its
		// batching dedup history is rebuilt from the new-view state, so the
		// proposed-map is reset and pending requests re-enter the queue.
		r.nextPropose = kmax + 1
		r.rt.Batcher.ResetProposed()
		for _, p := range r.pendingReqs {
			r.rt.Batcher.Add(p.req)
		}
		r.proposeReady(true)
	} else {
		// Re-forward outstanding requests to the new primary and keep the
		// failure-detection timer running.
		for _, p := range r.pendingReqs {
			r.rt.Net.Send(types.ReplicaNode(r.rt.Cfg.Primary(v)), &protocol.ForwardRequest{Req: p.req})
		}
	}
}
