package poe

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/types"
)

func readOp(key string) []types.Op {
	return []types.Op{{Kind: types.OpRead, Key: key}}
}

// TestReadPathSpeculativeServeAndTag: a SPECULATIVE read is answered from a
// backup's executed prefix without running consensus, and its (ExecSeq,
// StateDigest) tag names a prefix the serving replica's history actually
// contained — the safety anchor a client (or auditor) can later check.
func TestReadPathSpeculativeServeAndTag(t *testing.T) {
	c := startCluster(t, 4, 1, crypto.SchemeMAC, nil)
	cl := c.newClient(0, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if _, err := cl.Submit(ctx, writeOp("k", "v")); err != nil {
		t.Fatalf("write: %v", err)
	}
	c.awaitConvergence(1, nil, 5*time.Second)

	ans, err := cl.Read(ctx, readOp("k"), types.ConsistencySpeculative)
	if err != nil {
		t.Fatalf("speculative read: %v", err)
	}
	if ans.Fallback {
		t.Fatal("speculative read fell back to ordering on a healthy cluster")
	}
	if ans.Tier != types.ConsistencySpeculative {
		t.Fatalf("served tier %v, want SPECULATIVE", ans.Tier)
	}
	if len(ans.Result.Values) != 1 || string(ans.Result.Values[0]) != "v" {
		t.Fatalf("read values %q, want [v]", ans.Result.Values)
	}
	if ans.ExecSeq == 0 {
		t.Fatal("speculative answer not tagged with an executed prefix")
	}
	// The tag must match the digest the serving replica recorded when that
	// prefix executed.
	state, _, ok := c.replicas[ans.From].Runtime().Exec.DigestsAt(ans.ExecSeq)
	if !ok {
		t.Fatalf("replica %d retains no digest at seq %d", ans.From, ans.ExecSeq)
	}
	if state != ans.StateDigest {
		t.Fatalf("prefix tag mismatch at seq %d: reply=%x replica=%x",
			ans.ExecSeq, ans.StateDigest, state)
	}
	// And no replica should have run consensus for it: the metric counter
	// proves the serve was local.
	var specServes int64
	for _, r := range c.replicas {
		specServes += r.Runtime().Metrics.SpecReads.Load()
	}
	if specServes == 0 {
		t.Fatal("no replica recorded a speculative serve")
	}
}

// TestReadPathStrongServeUnderLease: with a healthy primary renewing its read
// lease, a STRONG read is eventually served directly by the primary (no
// ordering round) and still observes the latest committed write.
func TestReadPathStrongServeUnderLease(t *testing.T) {
	c := startCluster(t, 4, 1, crypto.SchemeMAC, nil)
	cl := c.newClient(0, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	deadline := time.Now().Add(10 * time.Second)
	for i := 0; ; i++ {
		if time.Now().After(deadline) {
			t.Fatal("no STRONG read served under the lease within 10s")
		}
		// Each write carries lease-grant piggybacks, keeping the lease fresh.
		val := fmt.Sprintf("v%d", i)
		if _, err := cl.Submit(ctx, writeOp("k", val)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		ans, err := cl.Read(ctx, readOp("k"), types.ConsistencyStrong)
		if err != nil {
			t.Fatalf("strong read %d: %v", i, err)
		}
		// A strong read must never be stale, served or ordered.
		if len(ans.Result.Values) != 1 || string(ans.Result.Values[0]) != val {
			t.Fatalf("strong read %d returned %q, want %q (fallback=%v)",
				i, ans.Result.Values, val, ans.Fallback)
		}
		if !ans.Fallback && ans.Tier == types.ConsistencyStrong {
			// Served under the lease, off the fast path. Done.
			var grants int64
			for _, r := range c.replicas {
				grants += r.Runtime().Metrics.LeaseGrants.Load()
			}
			if grants == 0 {
				t.Fatal("strong serve without any lease grant recorded")
			}
			return
		}
	}
}

// TestLeaseViewChangeStrongReadsNeverStale: crash the lease-holding primary,
// commit a write under the new view, and require a STRONG read to observe it.
// The lease promise must delay — not veto — the view change (ViewChanges > 0
// on the survivors), and the new primary must not serve under the dead
// primary's lease.
func TestLeaseViewChangeStrongReadsNeverStale(t *testing.T) {
	c := startCluster(t, 4, 1, crypto.SchemeMAC, nil)
	cl := c.newClient(0, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if _, err := cl.Submit(ctx, writeOp("x", "before")); err != nil {
		t.Fatalf("write before: %v", err)
	}
	// Kill the view-0 primary while it may hold a fresh read lease.
	c.net.Crash(types.ReplicaNode(0))
	// This write only completes once the survivors elect a new primary —
	// which the outstanding lease promise must allow after it expires.
	if _, err := cl.Submit(ctx, writeOp("x", "after")); err != nil {
		t.Fatalf("write after: %v", err)
	}
	skip := map[types.ReplicaID]bool{0: true}
	c.awaitConvergence(2, skip, 10*time.Second)
	for i := 1; i < 4; i++ {
		if got := c.replicas[i].Runtime().Metrics.ViewChanges.Load(); got == 0 {
			t.Fatalf("replica %d recorded no view change — lease promise vetoed it", i)
		}
	}

	// STRONG reads after the view change must see the new value, whether the
	// new primary serves them under its own lease or falls back to ordering.
	for i := 0; i < 3; i++ {
		ans, err := cl.Read(ctx, readOp("x"), types.ConsistencyStrong)
		if err != nil {
			t.Fatalf("strong read %d: %v", i, err)
		}
		if len(ans.Result.Values) != 1 || string(ans.Result.Values[0]) != "after" {
			t.Fatalf("STALE strong read %d: got %q, want %q (tier=%v fallback=%v from=%d)",
				i, ans.Result.Values, "after", ans.Tier, ans.Fallback, ans.From)
		}
	}
}
