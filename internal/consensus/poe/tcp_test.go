package poe

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/poexec/poe/internal/client"
	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/types"
)

// TestTCPCluster runs a full PoE cluster over real TCP connections on
// localhost, exercising the wire-codec frame encoding of every message
// type the normal case uses.
func TestTCPCluster(t *testing.T) {
	const n, f = 4, 1
	ring := crypto.NewKeyRing(n, []byte("tcp-test"))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Bind all replica listeners on ephemeral ports first, then share the
	// address book.
	addrs := make(map[types.NodeID]string, n+1)
	nets := make([]*network.TCPNet, n)
	for i := 0; i < n; i++ {
		node := types.ReplicaNode(types.ReplicaID(i))
		tn, err := network.NewTCPNet(node, map[types.NodeID]string{node: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		nets[i] = tn
		addrs[node] = tn.Addr()
		defer tn.Close()
	}
	clientID := types.ClientID(types.ClientIDBase)
	clientNode := types.ClientNode(clientID)
	ctn, err := network.NewTCPNet(clientNode, map[types.NodeID]string{clientNode: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer ctn.Close()
	addrs[clientNode] = ctn.Addr()

	// Rebuild each transport's peer book (TCPNet dials lazily from the map
	// it was built with, so construct final transports now).
	for i := 0; i < n; i++ {
		nets[i].Close()
	}
	ctn.Close()
	finalNets := make([]*network.TCPNet, n)
	book := func(self types.NodeID) map[types.NodeID]string {
		m := make(map[types.NodeID]string, len(addrs))
		for k, v := range addrs {
			m[k] = v
		}
		_ = self
		return m
	}
	for i := 0; i < n; i++ {
		node := types.ReplicaNode(types.ReplicaID(i))
		tn, err := network.NewTCPNet(node, book(node))
		if err != nil {
			t.Fatal(err)
		}
		finalNets[i] = tn
		defer tn.Close()
		cfg := protocol.Config{
			ID: types.ReplicaID(i), N: n, F: f, Scheme: crypto.SchemeMAC,
			BatchSize: 1, BatchLinger: time.Millisecond,
			Window: 16, CheckpointInterval: 16,
			ViewTimeout: 500 * time.Millisecond,
		}
		r, err := New(cfg, ring, tn, Options{})
		if err != nil {
			t.Fatal(err)
		}
		go r.Run(ctx)
	}
	cnet, err := network.NewTCPNet(clientNode, book(clientNode))
	if err != nil {
		t.Fatal(err)
	}
	defer cnet.Close()
	cl, err := client.New(client.Config{
		ID: clientID, N: n, F: f, Scheme: crypto.SchemeMAC,
		Timeout: 500 * time.Millisecond,
	}, ring, cnet)
	if err != nil {
		t.Fatal(err)
	}
	cl.Start(ctx)

	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("tcp-k%d", i)
		if _, err := cl.Submit(sctx, writeOp(key, "v")); err != nil {
			t.Fatalf("submit %d over tcp: %v", i, err)
		}
	}
	res, err := cl.Submit(sctx, []types.Op{{Kind: types.OpRead, Key: "tcp-k4"}})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Values[0]) != "v" {
		t.Fatalf("read %q over tcp", res.Values[0])
	}
}
