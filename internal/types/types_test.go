package types

import (
	"testing"
	"testing/quick"
)

func TestPrimaryRotation(t *testing.T) {
	for v := View(0); v < 10; v++ {
		if got := v.Primary(4); got != ReplicaID(v%4) {
			t.Fatalf("view %d: primary %d", v, got)
		}
	}
}

func TestNodeAddressing(t *testing.T) {
	r := ReplicaNode(3)
	if !r.IsReplica() || r.IsClient() || r.Replica() != 3 {
		t.Fatal("replica node misclassified")
	}
	c := NthClient(7)
	if !c.IsClient() || c.IsReplica() {
		t.Fatal("client node misclassified")
	}
	if c.Client() != ClientIDBase+7 {
		t.Fatalf("client id %d", c.Client())
	}
	if r.String() != "r3" || c.String() != "c7" {
		t.Fatalf("string forms %q %q", r, c)
	}
}

func TestDigestConcatFraming(t *testing.T) {
	// Length framing prevents concatenation ambiguity.
	a := DigestConcat([]byte("ab"), []byte("c"))
	b := DigestConcat([]byte("a"), []byte("bc"))
	if a == b {
		t.Fatal("DigestConcat is ambiguous under re-splitting")
	}
}

func TestTransactionDigestSensitivity(t *testing.T) {
	base := Transaction{Client: ClientIDBase, Seq: 1, Ops: []Op{{Kind: OpWrite, Key: "k", Value: []byte("v")}}}
	d := base.Digest()
	variants := []Transaction{
		{Client: ClientIDBase + 1, Seq: 1, Ops: base.Ops},
		{Client: ClientIDBase, Seq: 2, Ops: base.Ops},
		{Client: ClientIDBase, Seq: 1, Ops: []Op{{Kind: OpRead, Key: "k", Value: []byte("v")}}},
		{Client: ClientIDBase, Seq: 1, Ops: []Op{{Kind: OpWrite, Key: "k2", Value: []byte("v")}}},
		{Client: ClientIDBase, Seq: 1, Ops: []Op{{Kind: OpWrite, Key: "k", Value: []byte("v2")}}},
	}
	for i, v := range variants {
		if v.Digest() == d {
			t.Fatalf("variant %d collides with base digest", i)
		}
	}
	// TimeNanos is deliberately part of the digest (it salts retransmitted
	// distinct transactions), so identical content hashes identically.
	same := Transaction{Client: ClientIDBase, Seq: 1, Ops: base.Ops}
	if same.Digest() != d {
		t.Fatal("identical transaction hashed differently")
	}
}

func TestBatchDigestAndSize(t *testing.T) {
	b1 := Batch{Requests: []Request{{Txn: Transaction{Client: ClientIDBase, Seq: 1}}}}
	b2 := Batch{Requests: []Request{{Txn: Transaction{Client: ClientIDBase, Seq: 2}}}}
	if b1.Digest() == b2.Digest() {
		t.Fatal("different batches share a digest")
	}
	if b1.Size() != 1 {
		t.Fatalf("size %d", b1.Size())
	}
	z := Batch{ZeroPayload: true, ZeroCount: 100}
	if z.Size() != 100 {
		t.Fatalf("zero-payload size %d", z.Size())
	}
	empty := Batch{}
	if z.Digest() == empty.Digest() {
		t.Fatal("zero-payload batch digest equals empty batch digest")
	}
}

// TestQuickProposalDigestInjective: distinct (k, v) pairs give distinct
// proposal digests — the binding Proposition 2 relies on.
func TestQuickProposalDigestInjective(t *testing.T) {
	f := func(k1, v1, k2, v2 uint32, payload []byte) bool {
		d := DigestBytes(payload)
		h1 := ProposalDigest(SeqNum(k1), View(v1), d)
		h2 := ProposalDigest(SeqNum(k2), View(v2), d)
		if k1 == k2 && v1 == v2 {
			return h1 == h2
		}
		return h1 != h2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
