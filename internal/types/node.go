package types

import "fmt"

// NodeID addresses any participant — replica or client — in one address
// space, so a single transport can route both. Replica nodes are their
// replica ID; client nodes are offset by ClientIDBase.
type NodeID int32

// ReplicaNode converts a replica ID to a node address.
func ReplicaNode(id ReplicaID) NodeID { return NodeID(id) }

// ClientNode converts a client ID to a node address.
func ClientNode(id ClientID) NodeID { return NodeID(id) }

// IsReplica reports whether the node is a replica.
func (n NodeID) IsReplica() bool { return n < NodeID(ClientIDBase) }

// IsClient reports whether the node is a client.
func (n NodeID) IsClient() bool { return n >= NodeID(ClientIDBase) }

// Replica returns the replica ID of a replica node.
func (n NodeID) Replica() ReplicaID { return ReplicaID(n) }

// Client returns the client ID of a client node.
func (n NodeID) Client() ClientID { return ClientID(n) }

func (n NodeID) String() string {
	if n.IsClient() {
		return fmt.Sprintf("c%d", int32(n.Client()-ClientIDBase))
	}
	return fmt.Sprintf("r%d", int32(n))
}

// NthClient returns the node address of the i-th client (0-based).
func NthClient(i int) NodeID { return NodeID(ClientIDBase) + NodeID(i) }
