package types

import (
	"crypto/sha256"

	"github.com/poexec/poe/internal/wire"
)

// Hand-written wire codecs for the shared value types (package wire holds
// the conventions). Layouts are append-order contracts: changing one is a
// wire/disk format change and must bump the storage format version.
//
// Digest computation and wire encoding are deliberately the same pass: a
// transaction's digest is the SHA-256 of its canonical wire encoding, and a
// Request memoizes that encoding the first time either its digest or its
// marshal is needed — so proposing, WAL-logging, and digesting a request all
// reuse one serialization instead of each walking the fields again. Decoded
// requests get the memo for free: ReadWire captures the exact input range the
// transaction occupied (zero-copy, aliasing the receive buffer).

// AppendDigest appends a digest's raw 32 bytes.
func AppendDigest(buf []byte, d Digest) []byte { return append(buf, d[:]...) }

// ReadDigest reads a raw 32-byte digest.
func ReadDigest(r *wire.Reader) Digest {
	var d Digest
	copy(d[:], r.Raw(32))
	return d
}

// AppendWire appends the op's encoding: kind, key, value.
func (o *Op) AppendWire(buf []byte) []byte {
	buf = wire.AppendU8(buf, uint8(o.Kind))
	buf = wire.AppendString(buf, o.Key)
	return wire.AppendBytes(buf, o.Value)
}

// ReadWire decodes one op.
func (o *Op) ReadWire(r *wire.Reader) {
	o.Kind = OpKind(r.U8())
	o.Key = r.String()
	o.Value = r.Bytes()
}

// AppendWire appends the transaction's encoding: client, seq, send time,
// consistency tier, ops. This is the byte string transaction digests are
// computed over — the consistency byte is covered by the client signature, so
// a relay cannot retier a read. (The tier byte was added with the read path;
// WAL records written under the previous layout use the older storage format
// version and are refused, not mis-decoded.)
func (t *Transaction) AppendWire(buf []byte) []byte {
	buf = wire.AppendI32(buf, int32(t.Client))
	buf = wire.AppendU64(buf, t.Seq)
	buf = wire.AppendI64(buf, t.TimeNanos)
	buf = wire.AppendU8(buf, uint8(t.Consistency))
	buf = wire.AppendU32(buf, uint32(len(t.Ops)))
	for i := range t.Ops {
		buf = t.Ops[i].AppendWire(buf)
	}
	return buf
}

// ReadWire decodes one transaction.
func (t *Transaction) ReadWire(r *wire.Reader) {
	t.Client = ClientID(r.I32())
	t.Seq = r.U64()
	t.TimeNanos = r.I64()
	t.Consistency = Consistency(r.U8())
	n := r.Count(9) // kind byte + two u32 length prefixes
	if n == 0 {
		t.Ops = nil
		return
	}
	t.Ops = make([]Op, n)
	for i := range t.Ops {
		t.Ops[i].ReadWire(r)
	}
}

// ensureEnc memoizes the transaction's canonical encoding. Like digest
// memoization, it mutates the request, so the ownership rule in the Request
// doc comment applies.
func (r *Request) ensureEnc() {
	if r.txnEnc != nil {
		return
	}
	buf := wire.GetBuf()
	buf = r.Txn.AppendWire(buf)
	r.txnEnc = append(make([]byte, 0, len(buf)), buf...)
	wire.PutBuf(buf)
}

// AppendWire appends the request's encoding: transaction, then signature.
func (r *Request) AppendWire(buf []byte) []byte {
	if r.txnEnc != nil {
		buf = append(buf, r.txnEnc...)
	} else {
		buf = r.Txn.AppendWire(buf)
	}
	return wire.AppendBytes(buf, r.Sig)
}

// ReadWire decodes one request, memoizing the transaction's encoding from
// the input range it occupied (zero-copy): the first Digest call afterwards
// is a single hash over those bytes, with no re-serialization.
func (req *Request) ReadWire(r *wire.Reader) {
	start := r.Off()
	req.Txn.ReadWire(r)
	req.txnEnc = r.Since(start)
	req.Sig = r.Bytes()
	req.digest, req.hasDigest = Digest{}, false
}

// AppendWire appends the batch's encoding: zero-payload marker and count,
// then the requests.
func (b *Batch) AppendWire(buf []byte) []byte {
	buf = wire.AppendBool(buf, b.ZeroPayload)
	buf = wire.AppendU64(buf, uint64(b.ZeroCount))
	buf = wire.AppendU32(buf, uint32(len(b.Requests)))
	for i := range b.Requests {
		buf = b.Requests[i].AppendWire(buf)
	}
	return buf
}

// ReadWire decodes one batch.
func (b *Batch) ReadWire(r *wire.Reader) {
	b.ZeroPayload = r.Bool()
	b.ZeroCount = int(r.U64())
	n := r.Count(29) // minimum encoded size of an empty request
	if n == 0 {
		b.Requests = nil
	} else {
		b.Requests = make([]Request, n)
		for i := range b.Requests {
			b.Requests[i].ReadWire(r)
		}
	}
	b.digest, b.hasDigest = Digest{}, false
}

// AppendWire appends the record's encoding: position, view, batch digest,
// certificate, batch.
func (e *ExecRecord) AppendWire(buf []byte) []byte {
	buf = wire.AppendU64(buf, uint64(e.Seq))
	buf = wire.AppendU64(buf, uint64(e.View))
	buf = AppendDigest(buf, e.Digest)
	buf = wire.AppendBytes(buf, e.Proof)
	return e.Batch.AppendWire(buf)
}

// ReadWire decodes one execution record.
func (e *ExecRecord) ReadWire(r *wire.Reader) {
	e.Seq = SeqNum(r.U64())
	e.View = View(r.U64())
	e.Digest = ReadDigest(r)
	e.Proof = r.Bytes()
	e.Batch.ReadWire(r)
}

// AppendRecords appends a count-prefixed slice of execution records.
func AppendRecords(buf []byte, recs []ExecRecord) []byte {
	buf = wire.AppendU32(buf, uint32(len(recs)))
	for i := range recs {
		buf = recs[i].AppendWire(buf)
	}
	return buf
}

// ReadRecords decodes a count-prefixed slice of execution records.
func ReadRecords(r *wire.Reader) []ExecRecord {
	n := r.Count(16 + 32 + 4 + 9) // minimum encoded record size
	if n == 0 {
		return nil
	}
	recs := make([]ExecRecord, n)
	for i := range recs {
		recs[i].ReadWire(r)
	}
	if r.Err() != nil {
		return nil
	}
	return recs
}

// ExecRecord also implements wire.Message so the storage layer and the
// codec benchmarks can treat it as a stand-alone payload.

// WireID implements wire.Message.
func (e *ExecRecord) WireID() uint16 { return wire.IDExecRecord }

// MarshalTo implements wire.Message.
func (e *ExecRecord) MarshalTo(buf []byte) []byte { return e.AppendWire(buf) }

// Unmarshal implements wire.Message (strict: no trailing bytes).
func (e *ExecRecord) Unmarshal(data []byte) error {
	r := wire.NewReader(data)
	e.ReadWire(r)
	return r.Close()
}

func init() {
	wire.Register(func() wire.Message { return &ExecRecord{} })
}

// digestOf hashes a byte string into a Digest without the DigestBytes
// indirection (kept here so the hot path below reads as one line).
func digestOf(b []byte) Digest { return sha256.Sum256(b) }
