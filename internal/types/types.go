// Package types defines the identifiers, transactions, requests, and batches
// shared by every consensus protocol in this repository.
//
// The types mirror the system model of the PoE paper (§II-A): a system is a
// tuple (R, C) of replicas and clients; replicas have dense integer
// identifiers 0 ≤ id < n; protocols operate in views v = 0, 1, ... and order
// transactions by sequence number k.
package types

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"github.com/poexec/poe/internal/wire"
)

// ReplicaID identifies a replica. IDs are dense: 0 ≤ id < n.
type ReplicaID int32

// ClientID identifies a client. Client IDs are disjoint from replica IDs; by
// convention they start at ClientIDBase.
type ClientID int32

// ClientIDBase is the first client identifier. Replica IDs are always below
// it, which lets a transport route both kinds of node through one address
// space.
const ClientIDBase ClientID = 1 << 20

// View numbers a configuration with a fixed primary. In view v the replica
// with id(R) = v mod n is the primary.
type View uint64

// SeqNum is the position of a transaction (or batch) in the global order.
type SeqNum uint64

// Primary returns the primary replica of view v in a system of n replicas.
func (v View) Primary(n int) ReplicaID {
	return ReplicaID(uint64(v) % uint64(n))
}

// Digest is a SHA-256 hash value used to identify transactions, batches, and
// blocks.
type Digest [32]byte

// ZeroDigest is the zero value of Digest, used for genesis links.
var ZeroDigest Digest

func (d Digest) String() string { return fmt.Sprintf("%x", d[:6]) }

// IsZero reports whether the digest is all zeroes.
func (d Digest) IsZero() bool { return d == ZeroDigest }

// DigestBytes hashes an arbitrary byte string.
func DigestBytes(b []byte) Digest { return sha256.Sum256(b) }

// DigestConcat hashes the concatenation of the given byte strings with
// unambiguous length framing, so DigestConcat(a, b) != DigestConcat(a||b).
func DigestConcat(parts ...[]byte) Digest {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write(p)
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// ProposalDigest computes h = D(k || v || payload-digest), the value signed in
// SUPPORT messages (Fig 3, Line 13 of the paper).
func ProposalDigest(k SeqNum, v View, payload Digest) Digest {
	var buf [16 + 32]byte
	binary.BigEndian.PutUint64(buf[0:8], uint64(k))
	binary.BigEndian.PutUint64(buf[8:16], uint64(v))
	copy(buf[16:], payload[:])
	return sha256.Sum256(buf[:])
}

// OpKind is the kind of a key-value operation inside a transaction.
type OpKind uint8

const (
	// OpRead reads a key.
	OpRead OpKind = iota
	// OpWrite writes a key.
	OpWrite
	// OpNoop executes a fixed amount of dummy work and touches no state.
	// Used by the paper's zero-payload experiments.
	OpNoop
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpNoop:
		return "noop"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Op is a single key-value operation.
type Op struct {
	Kind  OpKind
	Key   string
	Value []byte
}

// Consistency selects how a transaction's results may be produced. The zero
// value (ConsistencyOrdered) is the classic path — full consensus ordering —
// so every transaction that predates the read tiers keeps its semantics.
// The other tiers only apply to read-only transactions; replicas order
// anything else regardless of the tag.
type Consistency uint8

const (
	// ConsistencyOrdered runs the transaction through consensus ordering.
	ConsistencyOrdered Consistency = iota
	// ConsistencyStrong serves a read-only transaction linearizably from
	// the current primary under a quorum-granted read lease, falling back
	// to ordering when no valid lease is held.
	ConsistencyStrong
	// ConsistencySpeculative serves a read-only transaction locally from
	// any replica's executed (possibly still speculative) prefix. The reply
	// is tagged with the executed sequence number and state digest; if a
	// rollback later truncates past that point the replica re-answers with
	// the repaired value.
	ConsistencySpeculative
)

func (c Consistency) String() string {
	switch c {
	case ConsistencyOrdered:
		return "ordered"
	case ConsistencyStrong:
		return "strong"
	case ConsistencySpeculative:
		return "speculative"
	default:
		return fmt.Sprintf("consistency(%d)", uint8(c))
	}
}

// Transaction is a client-issued unit of work: an ordered list of operations
// executed atomically and deterministically by every replica.
type Transaction struct {
	Client    ClientID
	Seq       uint64 // client-local sequence number, for deduplication
	Ops       []Op
	TimeNanos int64 // client send time; carried through for latency accounting

	// Consistency tiers read-only transactions onto the fast read path; see
	// the Consistency doc. Part of the signed canonical encoding, so a
	// relaying replica cannot silently downgrade a client's read tier.
	Consistency Consistency
}

// ReadOnly reports whether every operation in the transaction is a read.
// Only read-only transactions are eligible for the non-ordered consistency
// tiers; an empty transaction is not considered read-only.
func (t *Transaction) ReadOnly() bool {
	if len(t.Ops) == 0 {
		return false
	}
	for i := range t.Ops {
		if t.Ops[i].Kind != OpRead {
			return false
		}
	}
	return true
}

// Digest returns a collision-resistant identifier of the transaction: the
// SHA-256 of its canonical wire encoding (types/wire.go). Hashing the
// encoding — rather than walking the fields a second time with bespoke
// framing — is what lets a Request feed the same bytes to its digest, its
// PROPOSE marshal, and its WAL record.
func (t *Transaction) Digest() Digest {
	buf := wire.GetBuf()
	buf = t.AppendWire(buf)
	d := digestOf(buf)
	wire.PutBuf(buf)
	return d
}

// Request is a signed transaction 〈T〉c: the transaction plus the client's
// signature over its digest. Signatures assure that malicious primaries
// cannot forge transactions (§II-B).
//
// Request memoizes its digest and canonical encoding in unexported fields
// (never serialized; carried by value copies). Memoization mutates the
// struct, so a Request received from an in-process transport — whose pointer
// may be shared with the sender and with other replicas — must be cloned
// (Batch.Clone, CloneRequest) before its digest is first taken. The authentication pipeline does this at
// ingress; after that, a replica's event loop owns its copies exclusively.
type Request struct {
	Txn Transaction
	Sig []byte // client signature over Txn.Digest()

	digest    Digest
	hasDigest bool
	// txnEnc memoizes the transaction's canonical wire encoding (shared by
	// value copies, immutable once set): the single serialization pass the
	// digest, the proposal marshal, and the WAL record all reuse.
	txnEnc []byte
}

// Digest returns the digest of the wrapped transaction, computing it on
// first use and memoizing it. The computation memoizes the transaction's
// wire encoding as a side effect, so a later marshal of this request is a
// plain copy.
func (r *Request) Digest() Digest {
	if !r.hasDigest {
		r.ensureEnc()
		r.digest = digestOf(r.txnEnc)
		r.hasDigest = true
	}
	return r.digest
}

// CloneRequest returns a copy of the request that the caller owns: digest
// memoization on the copy never touches the original. The transaction's op
// slices are shared (they are immutable once created).
func CloneRequest(r Request) Request { return r }

// Batch aggregates client requests proposed under one sequence number
// (§III "Batching"). A batch with an empty request list and ZeroPayload set
// models the paper's zero-payload experiments: replicas execute dummy
// instructions but no request bytes travel in PROPOSE messages.
type Batch struct {
	Requests    []Request
	ZeroPayload bool
	// ZeroCount is the number of dummy executions a zero-payload batch
	// stands for (the paper uses 100).
	ZeroCount int

	// digest memoization; see the Request doc comment for the ownership
	// rule that makes this safe.
	digest    Digest
	hasDigest bool
}

// Clone returns a batch whose Request structs (and digest memos) are owned
// by the caller. The per-request payloads (keys, values, signatures) are
// shared — they are immutable once created. Clone is what makes digest
// memoization safe when an in-process transport delivers the same message
// pointer to several replicas.
func (b Batch) Clone() Batch {
	if b.Requests != nil {
		b.Requests = append([]Request(nil), b.Requests...)
	}
	return b
}

// MemoizeDigests populates the batch's digest memo and every request's, so
// later Digest calls anywhere downstream are loads. Call only on an owned
// batch (see Clone).
func (b *Batch) MemoizeDigests() { _ = b.Digest() }

// Size returns the number of logical transactions the batch carries.
func (b *Batch) Size() int {
	if b.ZeroPayload {
		return b.ZeroCount
	}
	return len(b.Requests)
}

// Digest identifies the batch contents. It is memoized, and computing it
// memoizes every request digest as a side effect.
func (b *Batch) Digest() Digest {
	if b.hasDigest {
		return b.digest
	}
	h := sha256.New()
	if b.ZeroPayload {
		var buf [9]byte
		buf[0] = 1
		binary.BigEndian.PutUint64(buf[1:], uint64(b.ZeroCount))
		h.Write(buf[:])
	}
	for i := range b.Requests {
		d := b.Requests[i].Digest()
		h.Write(d[:])
	}
	h.Sum(b.digest[:0])
	b.hasDigest = true
	return b.digest
}

// Result is the outcome of executing one transaction.
type Result struct {
	Client ClientID
	Seq    uint64 // client-local sequence number of the executed transaction
	Values [][]byte
}

// ExecRecord logs ExecuteR(〈T〉c, k, v): the fact that a batch was executed
// at sequence k in view v, together with the certificate that justified it.
type ExecRecord struct {
	Seq    SeqNum
	View   View
	Digest Digest // batch digest
	Proof  []byte // certificate (threshold signature / support proof)
	Batch  Batch
}

// CloneRecords copies a slice of execution records deeply enough that digest
// memoization on the copies never touches the originals (see Request).
func CloneRecords(recs []ExecRecord) []ExecRecord {
	if recs == nil {
		return nil
	}
	out := append([]ExecRecord(nil), recs...)
	for i := range out {
		out[i].Batch = out[i].Batch.Clone()
	}
	return out
}
