// Command poeclient talks to a poeserver cluster over TCP: set or get keys,
// or generate load.
//
//	poeclient -peers 127.0.0.1:7000,... -set greeting=hello
//	poeclient -peers 127.0.0.1:7000,... -get greeting
//	poeclient -peers 127.0.0.1:7000,... -load 5s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"github.com/poexec/poe/internal/client"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/deploy"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/types"
	"github.com/poexec/poe/internal/workload"
)

func main() {
	peerList := flag.String("peers", "", "comma-separated replica addresses")
	set := flag.String("set", "", "write key=value")
	get := flag.String("get", "", "read key")
	load := flag.Duration("load", 0, "generate YCSB load for this duration")
	listen := flag.String("listen", "127.0.0.1:0", "client listen address")
	seed := flag.String("seed", "poe-demo-seed", "shared key-ring seed")
	cid := flag.Int("client", 0, "client index")
	flag.Parse()

	addrs := strings.Split(*peerList, ",")
	n := len(addrs)
	if n < 4 {
		log.Fatalf("need at least 4 replicas, got %d", n)
	}
	f := (n - 1) / 3
	id := types.ClientID(types.ClientIDBase) + types.ClientID(*cid)
	peers := make(map[types.NodeID]string, n+1)
	for i, a := range addrs {
		peers[types.ReplicaNode(types.ReplicaID(i))] = a
	}
	peers[types.ClientNode(id)] = *listen

	tr, err := network.NewTCPNet(types.ClientNode(id), peers)
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()

	ring := crypto.NewKeyRing(n, []byte(*seed))
	cl, err := client.New(client.Config{
		ID: id, N: n, F: f, Scheme: crypto.SchemeMAC,
		Timeout: time.Second,
	}, ring, tr)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cl.Start(ctx)

	switch {
	case *set != "":
		kv := strings.SplitN(*set, "=", 2)
		if len(kv) != 2 {
			log.Fatal("-set wants key=value")
		}
		if _, err := cl.Submit(ctx, []types.Op{{Kind: types.OpWrite, Key: kv[0], Value: []byte(kv[1])}}); err != nil {
			log.Fatal(err)
		}
		fmt.Println("ok")
	case *get != "":
		res, err := cl.Submit(ctx, []types.Op{{Kind: types.OpRead, Key: *get}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%q\n", res.Values[0])
	case *load > 0:
		gen := workload.NewGenerator(workload.DefaultConfig(1000), id)
		var hist deploy.Hist
		deadline := time.Now().Add(*load)
		for time.Now().Before(deadline) {
			txn := gen.Next()
			txn.Seq = cl.NextSeq()
			begin := time.Now()
			if _, err := cl.SubmitTxn(ctx, txn); err != nil {
				log.Fatal(err)
			}
			hist.Record(time.Since(begin))
		}
		count := hist.Count()
		fmt.Printf("%d transactions in %v (%.0f txn/s closed-loop)\n",
			count, *load, float64(count)/load.Seconds())
		fmt.Printf("latency p50=%v p99=%v p999=%v mean=%v max=%v\n",
			hist.Quantile(0.50).Round(time.Microsecond),
			hist.Quantile(0.99).Round(time.Microsecond),
			hist.Quantile(0.999).Round(time.Microsecond),
			hist.Mean().Round(time.Microsecond),
			hist.Max().Round(time.Microsecond))
		fmt.Println("(closed-loop: one outstanding request; for open-loop offered-load sweeps use poeload)")
	default:
		log.Fatal("one of -set, -get, -load is required")
	}
}
