// Command poebench regenerates the tables and figures of the PoE paper's
// evaluation (§IV). Each figure has scaled-down defaults that finish in
// seconds; -full raises replica counts and durations toward the paper's
// configuration (n up to 91).
//
// Usage:
//
//	poebench -fig all
//	poebench -fig 9ab -full
//	poebench -fig 11
//
// Beyond the paper's figures, -fig chaos runs the robustness scenario suite
// (docs/SCENARIOS.md): partition-then-heal for all five protocols plus the
// Byzantine attacks of Example 3, reporting throughput, view changes, and
// the digest-prefix safety verdict for each.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/harness"
	"github.com/poexec/poe/internal/sim"
)

// benchEntry is one row of the machine-readable -json snapshot
// (BENCH_PR5.json schema, superset of the PR 4 one): benchmark name →
// throughput and latency. Harness rows fill TxnPerSec/LatencyMs; simulation
// rows (fig 11) fill DecisionsPerSec; codec rows (fig codec) fill
// OpsPerSec/MBPerSec.
type benchEntry struct {
	TxnPerSec       float64 `json:"txn_s,omitempty"`
	LatencyMs       float64 `json:"latency_ms,omitempty"`
	DecisionsPerSec float64 `json:"decisions_s,omitempty"`
	OpsPerSec       float64 `json:"ops_s,omitempty"`
	MBPerSec        float64 `json:"mb_s,omitempty"`
	// Read-path rows (fig reads): speedup over the all-consensus baseline
	// of the same sweep, and the digest-prefix audit verdict.
	Speedup        float64 `json:"speedup,omitempty"`
	AuditChecked   int64   `json:"audit_checked,omitempty"`
	AuditMismatch  int64   `json:"audit_mismatch,omitempty"`
	ReadFallbackPc float64 `json:"read_fallback_pct,omitempty"`
}

// benchSnapshot is the file the CI job uploads next to the fig-11 output so
// the perf trajectory is tracked per push.
type benchSnapshot struct {
	Schema     string                `json:"schema"`
	Benchmarks map[string]benchEntry `json:"benchmarks"`
}

var snapshot = benchSnapshot{Schema: "poebench/v1", Benchmarks: map[string]benchEntry{}}

// record adds one harness result to the snapshot.
func record(name string, res harness.Result) {
	snapshot.Benchmarks[name] = benchEntry{TxnPerSec: res.Throughput, LatencyMs: ms(res.AvgLatency)}
}

// recordSim adds one simulation result to the snapshot.
func recordSim(name string, res sim.Result) {
	snapshot.Benchmarks[name] = benchEntry{DecisionsPerSec: res.DecisionsPS}
}

func writeSnapshot(path string) {
	data, err := json.MarshalIndent(&snapshot, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

type scale struct {
	ns        []int
	batchN    int
	clients   int
	out       int
	warmup    time.Duration
	measure   time.Duration
	batchSize int
}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1,7,8,9ab,9cd,9ef,9gh,9ij,9kl,10,11,codec,exec,reads,all; or the chaos scenario suite: chaos")
	full := flag.Bool("full", false, "run the larger (paper-scale) configurations")
	jsonPath := flag.String("json", "", "write a machine-readable benchmark snapshot (benchmark name → txn/s, latency) to this file")
	flag.Parse()

	sc := scale{
		ns: []int{4, 8, 16}, batchN: 8,
		clients: 16, out: 8,
		warmup: 300 * time.Millisecond, measure: time.Second,
		batchSize: 50,
	}
	if *full {
		sc = scale{
			ns: []int{4, 16, 32, 64, 91}, batchN: 32,
			clients: 64, out: 16,
			warmup: 3 * time.Second, measure: 10 * time.Second,
			batchSize: 100,
		}
	}

	figs := strings.Split(*fig, ",")
	run := func(name string) bool {
		if *fig == "all" {
			return true
		}
		for _, f := range figs {
			if f == name {
				return true
			}
		}
		return false
	}

	any := false
	if run("1") {
		any = true
		fig1()
	}
	if run("7") {
		any = true
		fig7(sc)
	}
	if run("8") {
		any = true
		fig8(sc)
	}
	if run("9ab") {
		any = true
		fig9(sc, "9ab: scalability, standard payload, single backup failure", true, false)
	}
	if run("9cd") {
		any = true
		fig9(sc, "9cd: scalability, standard payload, no failures", false, false)
	}
	if run("9ef") {
		any = true
		fig9(sc, "9ef: zero payload, single backup failure", true, true)
	}
	if run("9gh") {
		any = true
		fig9(sc, "9gh: zero payload, no failures", false, true)
	}
	if run("9ij") {
		any = true
		fig9ij(sc)
	}
	if run("9kl") {
		any = true
		fig9kl(sc)
	}
	if run("10") {
		any = true
		fig10(sc)
	}
	if run("11") {
		any = true
		fig11()
	}
	if run("chaos") && *fig != "all" {
		any = true
		figChaos(sc)
	}
	if run("codec") {
		any = true
		figCodec()
	}
	if run("exec") {
		any = true
		figExec()
	}
	if run("reads") {
		any = true
		figReads(sc)
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
	if *jsonPath != "" {
		writeSnapshot(*jsonPath)
	}
}

func header(title string) {
	fmt.Printf("\n=== Fig %s ===\n", title)
}

func fig1() {
	header("1: protocol cost comparison (analytic)")
	fmt.Print(protocol.FormatCostTable(91, 30))
}

func fig7(sc scale) {
	header("7: upper bound (no consensus)")
	for _, execute := range []bool{false, true} {
		res, err := harness.RunUpperBound(harness.UpperBoundOptions{
			Execute: execute, Warmup: sc.warmup, Measure: sc.measure,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		mode := "no exec."
		if execute {
			mode = "exec."
		}
		record(fmt.Sprintf("fig7/%s", mode), res)
		fmt.Printf("%-9s %10.0f txn/s  %8.2f ms\n", mode, res.Throughput, ms(res.AvgLatency))
	}
}

func fig8(sc scale) {
	header("8: signature schemes (PBFT, n=16)")
	for _, tc := range []struct {
		name   string
		scheme crypto.Scheme
	}{{"None", crypto.SchemeNone}, {"ED", crypto.SchemeED}, {"CMAC", crypto.SchemeMAC}} {
		res, err := harness.Run(harness.Options{
			Protocol: harness.PBFT, N: 16, Scheme: tc.scheme,
			BatchSize: sc.batchSize, Clients: sc.clients, Outstanding: sc.out,
			Warmup: sc.warmup, Measure: sc.measure,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		record(fmt.Sprintf("fig8/%s", tc.name), res)
		fmt.Printf("%-5s %10.0f txn/s  %8.2f ms\n", tc.name, res.Throughput, ms(res.AvgLatency))
	}
}

func fig9(sc scale, title string, crash, zero bool) {
	header(title)
	fmt.Printf("%-9s", "protocol")
	for _, n := range sc.ns {
		fmt.Printf("  %14s", fmt.Sprintf("n=%d", n))
	}
	fmt.Println()
	for _, p := range harness.AllProtocols {
		fmt.Printf("%-9s", p)
		for _, n := range sc.ns {
			// The failure is a mid-run crash scheduled through the fault
			// plan (half-way through warmup, so the measurement window sees
			// the degraded steady state), not a replica that was never
			// there — reproducing Fig 9's single backup failure faithfully.
			var crashAt time.Duration
			if crash {
				crashAt = sc.warmup / 2
			}
			res, err := harness.Run(harness.Options{
				Protocol: p, N: n,
				BatchSize: sc.batchSize, Clients: sc.clients, Outstanding: sc.out,
				CrashBackupAfter: crashAt, ZeroPayload: zero,
				Warmup: sc.warmup, Measure: sc.measure,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			record(fmt.Sprintf("fig%s/%s/n=%d", strings.SplitN(title, ":", 2)[0], p, n), res)
			fmt.Printf("  %8.0f/%4.0fms", res.Throughput, ms(res.AvgLatency))
		}
		fmt.Println()
	}
}

func fig9ij(sc scale) {
	header("9ij: batching under single backup failure")
	batches := []int{10, 50, 100, 200, 400}
	fmt.Printf("%-9s", "protocol")
	for _, bs := range batches {
		fmt.Printf("  %14s", fmt.Sprintf("batch=%d", bs))
	}
	fmt.Println()
	for _, p := range harness.AllProtocols {
		fmt.Printf("%-9s", p)
		for _, bs := range batches {
			res, err := harness.Run(harness.Options{
				Protocol: p, N: sc.batchN,
				BatchSize: bs, Clients: sc.clients, Outstanding: sc.out,
				CrashBackup: true,
				Warmup:      sc.warmup, Measure: sc.measure,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			record(fmt.Sprintf("fig9ij/%s/batch=%d", p, bs), res)
			fmt.Printf("  %8.0f/%4.0fms", res.Throughput, ms(res.AvgLatency))
		}
		fmt.Println()
	}
}

func fig9kl(sc scale) {
	header("9kl: out-of-ordering disabled (closed-loop clients)")
	fmt.Printf("%-9s", "protocol")
	for _, n := range sc.ns {
		fmt.Printf("  %14s", fmt.Sprintf("n=%d", n))
	}
	fmt.Println()
	for _, p := range harness.AllProtocols {
		fmt.Printf("%-9s", p)
		for _, n := range sc.ns {
			out := 1
			if p == harness.HotStuff {
				out = 4 // the paper grants HotStuff its 4-deep chained pipeline
			}
			res, err := harness.Run(harness.Options{
				Protocol: p, N: n,
				BatchSize: 1, Clients: 4, Outstanding: out, Window: 1,
				Warmup: sc.warmup, Measure: sc.measure,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			record(fmt.Sprintf("fig9kl/%s/n=%d", p, n), res)
			fmt.Printf("  %8.0f/%4.0fms", res.Throughput, ms(res.AvgLatency))
		}
		fmt.Println()
	}
}

func fig10(sc scale) {
	header("10: primary failure / view change timeline (PoE vs PBFT)")
	for _, p := range []harness.Protocol{harness.PoE, harness.PBFT} {
		res, err := harness.Run(harness.Options{
			Protocol: p, N: sc.batchN,
			BatchSize: sc.batchSize, Clients: sc.clients, Outstanding: sc.out,
			Warmup: sc.warmup, Measure: 4 * sc.measure,
			CrashPrimaryAfter: sc.measure,
			SampleEvery:       sc.measure / 10,
			ViewTimeout:       300 * time.Millisecond,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		record(fmt.Sprintf("fig10/%s", p), res)
		fmt.Printf("%s (view changes: %d)\n", p, res.ViewChanges)
		for _, pt := range res.Timeline {
			bar := int(pt.Throughput / 200)
			if bar > 60 {
				bar = 60
			}
			fmt.Printf("  t=%6.2fs %10.0f txn/s %s\n", pt.Offset.Seconds(), pt.Throughput, strings.Repeat("#", bar))
		}
	}
}

func fig11() {
	header("11: simulated decisions/s vs message delay")
	delays := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	for _, n := range []int{4, 16, 128} {
		fmt.Printf("n=%d (sequential)\n", n)
		fmt.Printf("  %-9s", "delay")
		for _, p := range []sim.Protocol{sim.PoE, sim.PBFT, sim.HotStuff} {
			fmt.Printf("  %10s", p)
		}
		fmt.Println()
		for _, d := range delays {
			fmt.Printf("  %-9v", d)
			for _, p := range []sim.Protocol{sim.PoE, sim.PBFT, sim.HotStuff} {
				res := sim.Run(sim.Config{Protocol: p, N: n, Delay: d, Decisions: 500, Window: 1})
				recordSim(fmt.Sprintf("fig11/seq/n=%d/%v/delay=%v", n, p, d), res)
				fmt.Printf("  %10.1f", res.DecisionsPS)
			}
			fmt.Println()
		}
	}
	fmt.Println("n=128, out-of-order window 250 (PoE*, PBFT*)")
	for _, d := range delays {
		fmt.Printf("  %-9v", d)
		for _, p := range []sim.Protocol{sim.PoE, sim.PBFT} {
			res := sim.Run(sim.Config{Protocol: p, N: 128, Delay: d, Decisions: 500, Window: 250})
			recordSim(fmt.Sprintf("fig11/ooo/n=128/%v/delay=%v", p, d), res)
			fmt.Printf("  %10.0f", res.DecisionsPS)
		}
		fmt.Println()
	}
}

// figChaos runs the robustness scenario suite of docs/SCENARIOS.md: the
// partition-then-heal matrix over all five protocols, then the Byzantine
// attack family where each attack is most meaningful.
func figChaos(sc scale) {
	header("chaos: partition-then-heal, all protocols")
	fmt.Printf("%-9s %10s %10s %6s %7s  %s\n", "protocol", "txn/s", "after-heal", "vc", "safety", "net")
	base := func(p harness.Protocol) harness.Options {
		return harness.Options{
			Protocol: p, N: 4,
			BatchSize: sc.batchSize, Clients: sc.clients, Outstanding: sc.out,
			Warmup: sc.warmup, Measure: 2 * sc.measure,
			ViewTimeout:   300 * time.Millisecond,
			ClientTimeout: 300 * time.Millisecond,
		}
	}
	report := func(rep harness.ChaosReport, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		safety := "OK"
		if !rep.PrefixMatch {
			safety = "DIVERGED: " + rep.Divergence
		}
		fmt.Printf("%-9s %10.0f %10d %6d %7s  sent=%d dropped=%d queued=%d\n",
			rep.Protocol, rep.Throughput, rep.CompletedAfterEvent, rep.ViewChanges,
			safety, rep.Net.Sent, rep.Net.Dropped, rep.Net.Queued)
	}
	for _, p := range harness.AllProtocols {
		report(harness.RunChaos(harness.ChaosOptions{
			Options:     base(p),
			PartitionAt: sc.measure / 2,
			HealAt:      sc.measure,
		}))
	}

	header("chaos: byzantine primary attacks")
	for _, tc := range []struct {
		p      harness.Protocol
		attack harness.Attack
	}{
		{harness.PoE, harness.AttackEquivocate},
		{harness.PBFT, harness.AttackEquivocate},
		{harness.HotStuff, harness.AttackEquivocate},
		{harness.PoE, harness.AttackDark},
	} {
		opts := base(tc.p)
		fmt.Printf("%-12s ", tc.attack)
		report(harness.RunChaos(harness.ChaosOptions{Options: opts, Attack: tc.attack}))
	}
	opts := base(harness.PoE)
	opts.Scheme = crypto.SchemeTS
	fmt.Printf("%-12s ", harness.AttackSilenceCert)
	report(harness.RunChaos(harness.ChaosOptions{Options: opts, Attack: harness.AttackSilenceCert}))
}

// figReads benchmarks the hybrid-consistency read path: read-heavy YCSB
// mixes where reads either run full consensus (the pre-PR baseline) or are
// served locally as SPECULATIVE / STRONG tiered reads. Every tiered row also
// reports the digest-prefix safety audit: sampled speculative answers whose
// (seq, state-digest) tag was checked against the replicas' recorded
// execution digests. The headline comparison is YCSB-B (95% reads) with all
// reads SPECULATIVE vs the same mix all-ordered; the read path is expected
// to deliver at least 2x.
func figReads(sc scale) {
	header("reads: hybrid-consistency read path (YCSB-B/C)")
	type row struct {
		name     string
		p        harness.Protocol
		readFrac float64
		spec     float64
		strong   float64
	}
	rows := []row{
		{"poe/ycsb-b/ordered", harness.PoE, 0.95, 0, 0},
		{"poe/ycsb-b/spec", harness.PoE, 0.95, 1.0, 0},
		{"poe/ycsb-b/strong", harness.PoE, 0.95, 0, 1.0},
		{"poe/ycsb-b/mixed", harness.PoE, 0.95, 0.5, 0.5},
		{"poe/ycsb-c/spec", harness.PoE, 1.0, 1.0, 0},
		{"pbft/ycsb-b/ordered", harness.PBFT, 0.95, 0, 0},
		{"pbft/ycsb-b/spec", harness.PBFT, 0.95, 1.0, 0},
	}
	fmt.Printf("%-22s %10s %8s %9s %9s %5s %5s  %s\n",
		"mix", "txn/s", "lat ms", "spec", "strong", "fb", "rep", "audit")
	baselines := map[harness.Protocol]float64{}
	for _, r := range rows {
		res, err := harness.Run(harness.Options{
			Protocol: r.p, N: 4,
			BatchSize: sc.batchSize, Clients: sc.clients, Outstanding: sc.out,
			Warmup: sc.warmup, Measure: sc.measure,
			ReadFraction:        r.readFrac,
			SpeculativeFraction: r.spec,
			StrongFraction:      r.strong,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		e := benchEntry{
			TxnPerSec:     res.Throughput,
			LatencyMs:     ms(res.AvgLatency),
			AuditChecked:  res.ReadAuditChecked,
			AuditMismatch: res.ReadAuditMismatches,
		}
		if res.ReadsCompleted > 0 {
			e.ReadFallbackPc = 100 * float64(res.ReadsFallback) / float64(res.ReadsCompleted)
		}
		if r.spec == 0 && r.strong == 0 {
			baselines[r.p] = res.Throughput
		} else if base := baselines[r.p]; base > 0 {
			e.Speedup = res.Throughput / base
		}
		record("figreads/"+r.name, res)
		snapshot.Benchmarks["figreads/"+r.name] = e
		audit := fmt.Sprintf("%d checked, %d skipped, %d MISMATCH",
			res.ReadAuditChecked, res.ReadAuditSkipped, res.ReadAuditMismatches)
		if res.ReadAuditChecked == 0 && res.ReadAuditSkipped == 0 {
			audit = "-"
		}
		fmt.Printf("%-22s %10.0f %8.2f %9d %9d %5d %5d  %s",
			r.name, res.Throughput, ms(res.AvgLatency),
			res.SpecServes, res.StrongServes, res.ReadFallbacks, res.ReadRepairs, audit)
		if e.Speedup > 0 {
			fmt.Printf("  (%.2fx vs ordered)", e.Speedup)
		}
		fmt.Println()
		if res.ReadAuditMismatches > 0 {
			fmt.Fprintf(os.Stderr, "reads: SAFETY VIOLATION: %d speculative answers did not match any replica's recorded digest\n", res.ReadAuditMismatches)
			os.Exit(1)
		}
	}
	if b, s := snapshot.Benchmarks["figreads/poe/ycsb-b/ordered"], snapshot.Benchmarks["figreads/poe/ycsb-b/spec"]; b.TxnPerSec > 0 {
		fmt.Printf("\nYCSB-B speculative speedup over all-consensus: %.2fx (target >= 2.0x)\n", s.TxnPerSec/b.TxnPerSec)
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
