package main

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"github.com/poexec/poe/internal/consensus/poe"
	"github.com/poexec/poe/internal/types"
)

// figCodec is the PR 5 serialization A/B: the hand-written wire codec
// against the gob baseline it replaced, on the two payloads that dominate
// real traffic — a 50-request PROPOSE (the broadcast body) and the matching
// ExecRecord (the WAL payload). The gob baseline reuses persistent stream
// encoders/decoders (dictionary amortized, like the long-lived peer
// connections the old transport kept), so the ratio is steady-state against
// gob's best case. It is cheap enough for CI, where the rows land in
// BENCH_PR5.json next to the fig-11 snapshot.
func figCodec() {
	header("codec: wire vs gob (50-request batch)")

	batch := types.Batch{}
	for i := 0; i < 50; i++ {
		batch.Requests = append(batch.Requests, types.Request{
			Txn: types.Transaction{
				Client: types.ClientIDBase + types.ClientID(i), Seq: uint64(i),
				Ops: []types.Op{{Kind: types.OpWrite, Key: fmt.Sprintf("key-%d", i), Value: bytes.Repeat([]byte("v"), 16)}},
			},
			Sig: bytes.Repeat([]byte{7}, 64),
		})
	}
	prop := &poe.Propose{View: 1, Seq: 2, Batch: batch, Auth: [][]byte{bytes.Repeat([]byte{1}, 64)}}
	prop.Batch.MemoizeDigests()
	rec := &types.ExecRecord{Seq: 2, View: 1, Digest: prop.Batch.Digest(), Proof: bytes.Repeat([]byte{2}, 64), Batch: batch}

	fmt.Printf("%-24s %12s %12s %10s\n", "payload/codec/op", "ops/s", "MB/s", "vs gob")
	report := func(payload string, wireEnc, wireDec, gobEnc, gobDec row) {
		for _, r := range []struct {
			name string
			r    row
			base row
		}{
			{payload + "/wire/encode", wireEnc, gobEnc},
			{payload + "/gob/encode", gobEnc, gobEnc},
			{payload + "/wire/decode", wireDec, gobDec},
			{payload + "/gob/decode", gobDec, gobDec},
		} {
			snapshot.Benchmarks["codec/"+r.name] = benchEntry{OpsPerSec: r.r.ops, MBPerSec: r.r.mbs}
			fmt.Printf("%-24s %12.0f %12.1f %9.1fx\n", r.name, r.r.ops, r.r.mbs, r.r.ops/r.base.ops)
		}
	}

	report("propose",
		timeIt(len(prop.MarshalTo(nil)), func(buf []byte) []byte { return prop.MarshalTo(buf[:0]) }),
		timeDecode(prop.MarshalTo(nil), func(data []byte) error { var out poe.Propose; return out.Unmarshal(data) }),
		timeGobEncode(prop),
		timeGobDecode(prop, func() any { return &poe.Propose{} }),
	)
	report("execrecord",
		timeIt(len(rec.MarshalTo(nil)), func(buf []byte) []byte { return rec.MarshalTo(buf[:0]) }),
		timeDecode(rec.MarshalTo(nil), func(data []byte) error { var out types.ExecRecord; return out.Unmarshal(data) }),
		timeGobEncode(rec),
		timeGobDecode(rec, func() any { return &types.ExecRecord{} }),
	)
}

type row struct {
	ops float64
	mbs float64
}

// runFor calibrates an op to ~200ms of wall time and returns ops/s.
func runFor(op func()) float64 {
	const target = 200 * time.Millisecond
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			op()
		}
		elapsed := time.Since(start)
		if elapsed >= target/4 {
			return float64(iters) / elapsed.Seconds()
		}
		iters *= 4
	}
}

func timeIt(size int, enc func([]byte) []byte) row {
	buf := make([]byte, 0, size)
	ops := runFor(func() { buf = enc(buf) })
	return row{ops: ops, mbs: ops * float64(size) / 1e6}
}

func timeDecode(data []byte, dec func([]byte) error) row {
	ops := runFor(func() {
		if err := dec(data); err != nil {
			panic(err)
		}
	})
	return row{ops: ops, mbs: ops * float64(len(data)) / 1e6}
}

// timeGobEncode measures steady-state encoding on one persistent stream:
// the encoder survives across ops (dictionary sent once), only the byte
// sink is reset.
func timeGobEncode(v any) row {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(v); err != nil { // dictionary + first value
		panic(err)
	}
	buf.Reset()
	if err := enc.Encode(v); err != nil {
		panic(err)
	}
	size := buf.Len() // steady-state per-message size
	ops := runFor(func() {
		buf.Reset()
		if err := enc.Encode(v); err != nil {
			panic(err)
		}
	})
	return row{ops: ops, mbs: ops * float64(size) / 1e6}
}

// timeGobDecode measures steady-state decoding with the dictionary
// amortized over a 64-message stream.
func timeGobDecode(v any, fresh func() any) row {
	const streamLen = 64
	var stream bytes.Buffer
	enc := gob.NewEncoder(&stream)
	for i := 0; i < streamLen; i++ {
		if err := enc.Encode(v); err != nil {
			panic(err)
		}
	}
	data := stream.Bytes()
	dec := gob.NewDecoder(bytes.NewReader(data))
	cnt := 0
	ops := runFor(func() {
		if cnt == streamLen {
			dec = gob.NewDecoder(bytes.NewReader(data))
			cnt = 0
		}
		if err := dec.Decode(fresh()); err != nil {
			panic(err)
		}
		cnt++
	})
	return row{ops: ops, mbs: ops * float64(len(data)/streamLen) / 1e6}
}
