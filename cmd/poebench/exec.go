package main

// -fig exec: the parallel execution engine sweep (PR 7). A direct
// scheduler-level benchmark — no consensus, no network — that executes the
// same ordered batch stream serially (store.KV.Apply) and through
// exec.Engine at several worker counts, across conflict profile ×
// batch-size × window-depth points. Every parallel run is differentially
// checked against the serial twin's per-sequence state digests; the
// "violations" column must read 0 everywhere, or the engine is broken and
// the throughput numbers are meaningless.

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"github.com/poexec/poe/internal/exec"
	"github.com/poexec/poe/internal/store"
	"github.com/poexec/poe/internal/types"
)

// execProfile shapes the key-access distribution of the generated stream.
type execProfile struct {
	name    string
	keys    int     // key-space size
	hot     int     // hot-subset size (0 = uniform)
	hotProb float64 // probability an op hits the hot subset
}

// execPoint is one sweep coordinate.
type execPoint struct {
	batch int // transactions per batch
	depth int // batches per window (the pipeline depth execution drains at once)
}

const (
	execOpsPerTxn = 4   // 2 reads + 2 writes
	execValueSize = 128 // write payload; hashing it is the parallelizable work
	execTxnTarget = 24_000
)

// genExecWindows deterministically generates the point's whole stream:
// window after window of decided batches, identical for every engine.
func genExecWindows(p execProfile, pt execPoint, seed int64) [][]exec.Task {
	rng := rand.New(rand.NewSource(seed))
	key := func() string {
		if p.hot > 0 && rng.Float64() < p.hotProb {
			return fmt.Sprintf("key%08d", rng.Intn(p.hot))
		}
		return fmt.Sprintf("key%08d", rng.Intn(p.keys))
	}
	var windows [][]exec.Task
	seq := types.SeqNum(0)
	for txns := 0; txns < execTxnTarget; {
		window := make([]exec.Task, pt.depth)
		for d := 0; d < pt.depth; d++ {
			seq++
			b := &types.Batch{}
			for i := 0; i < pt.batch; i++ {
				txn := types.Transaction{Client: types.ClientID(i % 64), Seq: uint64(seq)}
				for j := 0; j < execOpsPerTxn; j++ {
					if j%2 == 0 {
						txn.Ops = append(txn.Ops, types.Op{Kind: types.OpRead, Key: key()})
					} else {
						val := make([]byte, execValueSize)
						rng.Read(val)
						txn.Ops = append(txn.Ops, types.Op{Kind: types.OpWrite, Key: key(), Value: val})
					}
				}
				b.Requests = append(b.Requests, types.Request{Txn: txn})
			}
			window[d] = exec.Task{Seq: seq, Batch: b}
			txns += pt.batch
		}
		windows = append(windows, window)
	}
	return windows
}

// runExecSerial executes the stream through the serial store path and
// returns throughput plus the per-sequence digest trace the parallel runs
// are checked against.
func runExecSerial(windows [][]exec.Task) (float64, []types.Digest) {
	kv := store.New()
	var digests []types.Digest
	txns := 0
	start := time.Now()
	for _, window := range windows {
		for i := range window {
			if _, err := kv.Apply(window[i].Seq, window[i].Batch); err != nil {
				panic(err)
			}
			digests = append(digests, kv.StateDigest())
			txns += len(window[i].Batch.Requests)
		}
	}
	return float64(txns) / time.Since(start).Seconds(), digests
}

// runExecParallel executes the stream through the engine, installing each
// window's effects and counting determinism violations against the serial
// digest trace.
func runExecParallel(windows [][]exec.Task, workers int, want []types.Digest) (tps float64, waves, violations int) {
	kv := store.New()
	eng := exec.New(workers)
	txns, di := 0, 0
	start := time.Now()
	for _, window := range windows {
		out, stats := eng.Run(kv, window)
		waves += stats.Waves
		for i := range window {
			if err := kv.InstallPrepared(window[i].Seq, out[i].Writes, out[i].Delta); err != nil {
				panic(err)
			}
			if kv.StateDigest() != want[di] {
				violations++
			}
			di++
			txns += len(window[i].Batch.Requests)
		}
	}
	return float64(txns) / time.Since(start).Seconds(), waves, violations
}

// figExec runs the sweep and records every point in the snapshot
// (BENCH_PR7.json).
func figExec() {
	header(fmt.Sprintf("exec: parallel execution sweep (GOMAXPROCS=%d)", runtime.GOMAXPROCS(0)))
	profiles := []execProfile{
		{name: "low-conflict", keys: 1 << 14},
		{name: "high-conflict", keys: 256, hot: 8, hotProb: 0.6},
	}
	points := []execPoint{{batch: 50, depth: 1}, {batch: 50, depth: 8}, {batch: 200, depth: 8}, {batch: 50, depth: 32}}
	workerCounts := []int{1, 2, 4, 8}
	totalViolations := 0
	for _, p := range profiles {
		fmt.Printf("%s (keys=%d hot=%d/%.0f%%)\n", p.name, p.keys, p.hot, p.hotProb*100)
		fmt.Printf("  %-18s %12s", "point", "serial")
		for _, w := range workerCounts {
			fmt.Printf("  %12s", fmt.Sprintf("w=%d", w))
		}
		fmt.Printf("  %10s  %s\n", "waves/win", "violations")
		for _, pt := range points {
			windows := genExecWindows(p, pt, 7)
			serialTPS, digests := runExecSerial(windows)
			record2(fmt.Sprintf("exec/%s/batch=%d/depth=%d/serial", p.name, pt.batch, pt.depth), serialTPS)
			fmt.Printf("  batch=%-4d depth=%-3d %9.0f/s", pt.batch, pt.depth, serialTPS)
			var lastWaves, pointViolations int
			for _, w := range workerCounts {
				tps, waves, viol := runExecParallel(windows, w, digests)
				lastWaves = waves
				pointViolations += viol
				record2(fmt.Sprintf("exec/%s/batch=%d/depth=%d/workers=%d", p.name, pt.batch, pt.depth, w), tps)
				fmt.Printf("  %7.0f/s %.1fx", tps, tps/serialTPS)
			}
			totalViolations += pointViolations
			fmt.Printf("  %10.1f  %d\n", float64(lastWaves)/float64(len(windows)), pointViolations)
		}
	}
	if totalViolations == 0 {
		fmt.Println("determinism: 0 violations across the sweep")
	} else {
		fmt.Printf("determinism: %d VIOLATIONS — parallel execution diverged from serial\n", totalViolations)
	}
}

// record2 adds one raw txn/s sample to the snapshot.
func record2(name string, tps float64) {
	snapshot.Benchmarks[name] = benchEntry{TxnPerSec: tps}
}
