// Command poeserver runs one PoE replica over TCP, so a cluster can be
// spread across processes or machines.
//
// Example 4-replica cluster on one host:
//
//	poeserver -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 &
//	poeserver -id 1 -peers ... &  # and so on for ids 2 and 3
//	poeclient -peers ... -set greeting=hello
//
// All replicas (and clients) must share the same -seed so the deterministic
// key ring agrees.
//
// The -fault-* flags arm the chaos fabric on this replica's outbound links
// (drop/duplicate/reorder probabilities, delay ± jitter) — a WAN emulator
// for multi-process robustness testing; see docs/SCENARIOS.md.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/poexec/poe/internal/consensus/poe"
	"github.com/poexec/poe/internal/consensus/protocol"
	"github.com/poexec/poe/internal/crypto"
	"github.com/poexec/poe/internal/network"
	"github.com/poexec/poe/internal/storage"
	"github.com/poexec/poe/internal/types"
)

// snapSeq formats the recovered snapshot's sequence number (0 = none).
func snapSeq(rec *storage.Recovered) types.SeqNum {
	if rec.Snapshot == nil {
		return 0
	}
	return rec.Snapshot.Seq
}

func main() {
	id := flag.Int("id", 0, "replica id (0-based)")
	peerList := flag.String("peers", "", "comma-separated replica addresses, index = replica id")
	f := flag.Int("f", 0, "faults tolerated (default (n-1)/3)")
	batch := flag.Int("batch", 100, "batch size")
	scheme := flag.String("scheme", "mac", "authentication scheme: mac|ts|ed|none")
	seed := flag.String("seed", "poe-demo-seed", "shared key-ring seed")
	dataDir := flag.String("data-dir", "", "directory for the WAL and checkpoint snapshots; empty = volatile (no crash recovery)")
	fsync := flag.Bool("fsync", false, "fsync the WAL on every append (survives machine crashes, not just process crashes)")
	checkpointInterval := flag.Int("checkpoint-interval", 0, "sequence numbers between checkpoints (0 = protocol default)")
	window := flag.Int("window", 0, "out-of-order consensus window (0 = protocol default)")
	viewTimeout := flag.Duration("view-timeout", 0, "initial failure-detection timeout (0 = protocol default)")
	metricsJSON := flag.String("metrics-json", "", "write the replica's final metrics as JSON to this path on graceful shutdown")
	faultDrop := flag.Float64("fault-drop", 0, "chaos: probability of dropping each outbound message")
	faultDup := flag.Float64("fault-dup", 0, "chaos: probability of duplicating each outbound message")
	faultReorder := flag.Float64("fault-reorder", 0, "chaos: probability of swapping an outbound message with its successor")
	faultDelay := flag.Duration("fault-delay", 0, "chaos: fixed outbound delay (e.g. 5ms)")
	faultJitter := flag.Duration("fault-jitter", 0, "chaos: ± jitter on the outbound delay")
	faultSeed := flag.Int64("fault-seed", 1, "chaos: seed for the fault randomness")
	flag.Parse()

	addrs := strings.Split(*peerList, ",")
	n := len(addrs)
	if n < 4 {
		log.Fatalf("need at least 4 replicas, got %d", n)
	}
	if *f == 0 {
		*f = (n - 1) / 3
	}
	peers := make(map[types.NodeID]string, n)
	for i, a := range addrs {
		peers[types.ReplicaNode(types.ReplicaID(i))] = a
	}

	var sch crypto.Scheme
	switch *scheme {
	case "mac":
		sch = crypto.SchemeMAC
	case "ts":
		sch = crypto.SchemeTS
	case "ed":
		sch = crypto.SchemeED
	case "none":
		sch = crypto.SchemeNone
	default:
		log.Fatalf("unknown scheme %q", *scheme)
	}

	tr, err := network.NewTCPNet(types.ReplicaNode(types.ReplicaID(*id)), peers)
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()

	// Chaos flags route this replica's outbound traffic through the fault
	// fabric — a WAN emulator / robustness harness for multi-process
	// clusters. Inbound traffic is the other replicas' outbound; give every
	// process the same flags for a symmetric network.
	var replicaNet network.Transport = tr
	faults := network.LinkFaults{
		Drop: *faultDrop, Duplicate: *faultDup, Reorder: *faultReorder,
		Delay: *faultDelay, Jitter: *faultJitter,
	}
	if !faults.IsZero() {
		fn := network.NewFaultNet(nil, network.WithFaultSeed(*faultSeed))
		fn.SetDefaultFaults(faults)
		replicaNet = fn.Wrap(tr)
		fmt.Printf("fault fabric armed: %+v\n", faults)
	}

	ring := crypto.NewKeyRing(n, []byte(*seed))
	cfg := protocol.Config{
		ID: types.ReplicaID(*id), N: n, F: *f,
		Scheme: sch, BatchSize: *batch,
		CheckpointInterval: types.SeqNum(*checkpointInterval),
		Window:             *window,
		ViewTimeout:        *viewTimeout,
	}
	var ropts protocol.RuntimeOptions
	var st *storage.Store
	if *dataDir != "" {
		st, err = storage.Open(*dataDir, storage.Options{Sync: *fsync})
		if err != nil {
			log.Fatalf("open data dir %s: %v", *dataDir, err)
		}
		defer st.Close()
		if rec := st.Recovered(); rec.LastSeq > 0 {
			fmt.Printf("recovered %d batches from %s (snapshot at %d, %d WAL records)\n",
				rec.LastSeq, *dataDir, snapSeq(rec), len(rec.Records))
		}
		ropts.Storage = st
	}
	replica, err := poe.New(cfg, ring, replicaNet, poe.Options{RuntimeOptions: ropts})
	if err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		s := <-sig
		fmt.Printf("received %v, shutting down\n", s)
		cancel()
	}()

	fmt.Printf("poe replica %d/%d listening on %s (scheme %s)\n", *id, n, tr.Addr(), sch)
	replica.Runtime().Metrics.Start()
	replica.Run(ctx)

	// Graceful shutdown: the Run loop has returned, so no more batches will
	// execute. Drain in dependency order — flush the WAL group (every
	// executed-but-unsynced record reaches disk), stop accepting traffic,
	// then report final metrics — so the runner (cmd/poerun, the e2e
	// battery) collects a deterministic end-of-run snapshot. The deferred
	// Closes become no-ops.
	if st != nil {
		if err := st.Flush(); err != nil {
			log.Printf("WAL flush on shutdown: %v", err)
		}
		st.Close()
	}
	tr.Close()
	snap := replica.Runtime().Metrics.Snapshot()
	fmt.Printf("final: executed=%d txns (%d batches) proposed=%d checkpoints=%d view-changes=%d rollbacks=%d throughput=%.1f txn/s uptime=%.1fs\n",
		snap.ExecutedTxns, snap.ExecutedBatches, snap.ProposedBatches,
		snap.Checkpoints, snap.ViewChangesDone, snap.Rollbacks,
		snap.ThroughputTxnS, snap.UptimeSeconds)
	if *metricsJSON != "" {
		writeMetrics(*metricsJSON, snap)
	}
}

// writeMetrics dumps the final metrics snapshot atomically (write to a temp
// file, rename) so a collector polling the path never reads a torn file.
func writeMetrics(path string, snap protocol.MetricsSnapshot) {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Printf("marshal metrics: %v", err)
		return
	}
	tmp := fmt.Sprintf("%s.tmp-%d", path, time.Now().UnixNano())
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		log.Printf("write metrics %s: %v", path, err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		log.Printf("write metrics %s: %v", path, err)
	}
}
