// Command poerun launches and supervises a multi-process poeserver cluster
// from one config: it allocates addresses (or takes explicit ones), starts
// one real OS process per replica, health-checks them, optionally applies a
// schedule of process faults (kill / stop / restart / wipe-restart of a
// named replica), forwards SIGTERM/SIGINT for graceful cluster shutdown,
// and collects per-replica logs and exit metrics under one run directory.
//
// A 4-process cluster on free ports until Ctrl-C, logs in ./run:
//
//	poerun -run-dir run
//
// A durable cluster on fixed ports with a crash-and-recover scenario:
//
//	poerun -addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 \
//	    -data-root /tmp/poe-data -at 5s:kill:3 -at 8s:restart:3 -duration 15s
//
// Drive load against it with cmd/poeload (open-loop Poisson sweeps) or
// cmd/poeclient. Config may also come from a JSON file (-config), flags
// overriding; see internal/deploy.ClusterConfig for the schema.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"github.com/poexec/poe/internal/deploy"
)

// eventList collects repeated -at flags.
type eventList []deploy.Event

func (e *eventList) String() string { return fmt.Sprint(*e) }

func (e *eventList) Set(s string) error {
	ev, err := deploy.ParseEvent(s)
	if err != nil {
		return err
	}
	*e = append(*e, ev)
	return nil
}

func main() {
	configPath := flag.String("config", "", "JSON cluster config (internal/deploy.ClusterConfig); flags override")
	n := flag.Int("n", 0, "replica count (free 127.0.0.1 ports are allocated)")
	addrList := flag.String("addrs", "", "comma-separated explicit replica addresses (overrides -n)")
	f := flag.Int("f", 0, "faults tolerated (default (n-1)/3)")
	scheme := flag.String("scheme", "", "authentication scheme: mac|ts|ed|none")
	batch := flag.Int("batch", 0, "proposal batch size")
	checkpointInterval := flag.Int("checkpoint-interval", 0, "sequence numbers between checkpoints")
	window := flag.Int("window", 0, "out-of-order consensus window")
	viewTimeout := flag.Duration("view-timeout", 0, "initial failure-detection timeout")
	seed := flag.String("seed", "", "shared key-ring seed")
	dataRoot := flag.String("data-root", "", "root for per-replica durable data dirs; empty = volatile")
	fsync := flag.Bool("fsync", false, "fsync the WAL on commit")
	runDir := flag.String("run-dir", "", "directory for per-replica logs and exit metrics (default: temp dir)")
	serverBin := flag.String("server-bin", "", "poeserver binary (default: sibling of this binary, then $PATH)")
	duration := flag.Duration("duration", 0, "run for this long then shut down gracefully (0 = until SIGTERM/SIGINT)")
	healthTimeout := flag.Duration("health-timeout", 15*time.Second, "how long to wait for every replica to accept connections")
	grace := flag.Duration("grace", 10*time.Second, "graceful-shutdown deadline before SIGKILL escalation")
	faultDrop := flag.Float64("fault-drop", 0, "chaos: per-replica outbound drop probability (forwarded to poeserver)")
	faultDup := flag.Float64("fault-dup", 0, "chaos: duplicate probability")
	faultReorder := flag.Float64("fault-reorder", 0, "chaos: reorder probability")
	faultDelay := flag.Duration("fault-delay", 0, "chaos: fixed outbound delay")
	faultJitter := flag.Duration("fault-jitter", 0, "chaos: ± jitter on the delay")
	faultSeed := flag.Int64("fault-seed", 0, "chaos: fault randomness seed")
	var events eventList
	flag.Var(&events, "at", "schedule a process fault: <offset>:<action>:<replica>, action = kill|stop|restart|wipe-restart (repeatable)")
	flag.Parse()

	var cfg deploy.ClusterConfig
	if *configPath != "" {
		var err error
		cfg, err = deploy.LoadClusterConfig(*configPath)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *addrList != "" {
		cfg.Addrs = strings.Split(*addrList, ",")
	}
	if *n > 0 {
		cfg.Replicas = *n
	}
	if *f > 0 {
		cfg.F = *f
	}
	if *scheme != "" {
		cfg.Scheme = *scheme
	}
	if *batch > 0 {
		cfg.Batch = *batch
	}
	if *checkpointInterval > 0 {
		cfg.CheckpointInterval = *checkpointInterval
	}
	if *window > 0 {
		cfg.Window = *window
	}
	if *viewTimeout > 0 {
		cfg.ViewTimeout = deploy.Duration(*viewTimeout)
	}
	if *seed != "" {
		cfg.Seed = *seed
	}
	if *dataRoot != "" {
		cfg.DataRoot = *dataRoot
	}
	if *fsync {
		cfg.Fsync = true
	}
	if *runDir != "" {
		cfg.RunDir = *runDir
	}
	if *serverBin != "" {
		cfg.ServerBin = *serverBin
	}
	if *faultDrop > 0 || *faultDup > 0 || *faultReorder > 0 || *faultDelay > 0 || *faultJitter > 0 {
		cfg.Fault = deploy.FaultProfile{
			Drop: *faultDrop, Duplicate: *faultDup, Reorder: *faultReorder,
			Delay: deploy.Duration(*faultDelay), Jitter: deploy.Duration(*faultJitter),
			Seed: *faultSeed,
		}
	}

	runner, err := deploy.Start(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster of %d replicas starting; run dir %s\n", runner.N(), runner.RunDir())
	if err := runner.WaitHealthy(*healthTimeout); err != nil {
		runner.Shutdown(*grace)
		log.Fatal(err)
	}
	start := time.Now()
	fmt.Printf("healthy: %s\n", strings.Join(runner.Addrs(), ","))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		s := <-sig
		fmt.Printf("received %v, shutting the cluster down\n", s)
		cancel()
	}()
	if *duration > 0 {
		go func() {
			select {
			case <-time.After(*duration):
				cancel()
			case <-ctx.Done():
			}
		}()
	}

	// Apply the fault schedule (sorted by offset) while the clock runs.
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	schedErr := make(chan error, 1)
	go func() {
		if err := runner.RunSchedule(ctx, start, events); err != nil && ctx.Err() == nil {
			schedErr <- err
			return
		}
		schedErr <- nil
	}()

	select {
	case err := <-schedErr:
		if err != nil {
			fmt.Fprintf(os.Stderr, "schedule failed: %v\n", err)
			runner.Shutdown(*grace)
			os.Exit(1)
		}
		// Schedule done; keep running until the duration or a signal ends
		// the run.
		<-ctx.Done()
	case <-ctx.Done():
	}

	if err := runner.Shutdown(*grace); err != nil {
		log.Fatal(err)
	}
	for id := 0; id < runner.N(); id++ {
		snap, err := runner.ReadMetrics(id)
		if err != nil {
			fmt.Printf("replica %d: no exit metrics (%v)\n", id, err)
			continue
		}
		fmt.Printf("replica %d: executed=%d txns (%d batches) checkpoints=%d view-changes=%d throughput=%.1f txn/s\n",
			id, snap.ExecutedTxns, snap.ExecutedBatches, snap.Checkpoints,
			snap.ViewChangesDone, snap.ThroughputTxnS)
	}
	fmt.Printf("run complete after %v; logs and metrics in %s\n",
		time.Since(start).Round(time.Millisecond), runner.RunDir())
}
