// Command poeload is a standalone open-loop workload driver for a poeserver
// cluster: transactions arrive on a Poisson schedule at a target offered
// rate — independent of how fast the cluster answers — and latency is
// recorded from each request's scheduled arrival in an HDR-style histogram,
// so queueing collapse under overload shows up as the p99/p999 explosion it
// really is instead of the quietly reduced throughput a closed-loop client
// would report. See docs/BENCHMARKS.md ("multi-process methodology").
//
// One measurement point at 500 txn/s:
//
//	poeload -peers 127.0.0.1:7000,...,127.0.0.1:7003 -rate 500 -duration 10s
//
// An offered-load sweep, machine-readable results included:
//
//	poeload -peers ... -rates 200,400,800,1600 -duration 10s -json BENCH_PR8.json
//
// Pair with cmd/poerun, which launches and supervises the cluster.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/poexec/poe/internal/deploy"
	"github.com/poexec/poe/internal/workload"
)

func parseRates(single float64, list string) ([]float64, error) {
	if list == "" {
		if single <= 0 {
			return nil, fmt.Errorf("one of -rate or -rates is required")
		}
		return []float64{single}, nil
	}
	var rates []float64
	for _, s := range strings.Split(list, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("bad rate %q in -rates", s)
		}
		rates = append(rates, r)
	}
	return rates, nil
}

func main() {
	peerList := flag.String("peers", "", "comma-separated replica addresses")
	rate := flag.Float64("rate", 0, "offered load in txn/s (single measurement point)")
	rateList := flag.String("rates", "", "comma-separated offered loads for a sweep (overrides -rate)")
	duration := flag.Duration("duration", 10*time.Second, "measured window per sweep point")
	warmup := flag.Duration("warmup", 2*time.Second, "unmeasured warmup per sweep point")
	clients := flag.Int("clients", 8, "client identities arrivals fan out across")
	baseClient := flag.Int("base-client", 0, "client index offset (avoid collisions with other drivers)")
	maxInFlight := flag.Int("max-in-flight", 4096, "open-loop bound on outstanding requests; arrivals beyond it are shed")
	reqTimeout := flag.Duration("request-timeout", 15*time.Second, "per-request deadline (client retransmits within it)")
	records := flag.Int("records", 1000, "YCSB table size")
	writeFrac := flag.Float64("write-fraction", 0.9, "fraction of operations that are writes")
	specFrac := flag.Float64("speculative-fraction", 0, "fraction of read-only txns issued as SPECULATIVE tiered reads")
	strongFrac := flag.Float64("strong-fraction", 0, "fraction of read-only txns issued as STRONG tiered reads")
	zipf := flag.Float64("zipf", 0.9, "Zipfian skew (0 = uniform)")
	valueSize := flag.Int("value-size", 46, "written value size in bytes")
	seed := flag.String("seed", "poe-demo-seed", "shared key-ring seed")
	wseed := flag.Int64("workload-seed", 42, "workload and arrival-process seed")
	scheme := flag.String("scheme", "mac", "cluster authentication scheme: mac|ts|ed|none")
	jsonPath := flag.String("json", "", "write the sweep results (deploy.SweepResult schema) to this file")
	flag.Parse()

	addrs := strings.Split(*peerList, ",")
	if len(addrs) < 4 || *peerList == "" {
		log.Fatalf("need at least 4 replica addresses in -peers")
	}
	rates, err := parseRates(*rate, *rateList)
	if err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		cancel()
	}()

	pool, closePool, err := deploy.NewTCPClients(ctx, deploy.ClientPoolOptions{
		Addrs:     addrs,
		Scheme:    *scheme,
		Seed:      *seed,
		Count:     *clients,
		BaseIndex: *baseClient,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer closePool()

	wcfg := workload.Config{
		Records:             *records,
		WriteFraction:       *writeFrac,
		Zipf:                *zipf,
		ValueSize:           *valueSize,
		OpsPerTxn:           1,
		SpeculativeFraction: *specFrac,
		StrongFraction:      *strongFrac,
		Seed:                *wseed,
	}
	opts := deploy.LoadOptions{
		Duration:       *duration,
		Warmup:         *warmup,
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *reqTimeout,
		Workload:       wcfg,
		Seed:           *wseed,
	}

	fmt.Printf("open-loop sweep against %d replicas, %d clients, %v/point (+%v warmup)\n",
		len(addrs), *clients, *duration, *warmup)
	fmt.Printf("%10s %12s %9s %9s %9s %9s %8s %6s\n",
		"offered", "achieved", "p50", "p99", "p999", "mean", "done", "err")
	points, runErr := deploy.RunSweep(ctx, pool, rates, opts, func(p deploy.LoadPoint) {
		fmt.Printf("%8.0f/s %10.0f/s %7.1fms %7.1fms %7.1fms %7.1fms %8d %6d\n",
			p.OfferedTxnS, p.AchievedTxnS, p.P50Ms, p.P99Ms, p.P999Ms, p.MeanMs,
			p.Completed, p.Errors+p.Shed)
	})

	if *jsonPath != "" && len(points) > 0 {
		res := deploy.SweepResult{
			Schema:    deploy.SweepSchema,
			N:         len(addrs),
			Scheme:    *scheme,
			Clients:   *clients,
			Records:   *records,
			WriteMix:  *writeFrac,
			SpecMix:   *specFrac,
			StrongMix: *strongFrac,
			Points:    points,
		}
		data, err := json.MarshalIndent(&res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d sweep points to %s\n", len(points), *jsonPath)
	}
	if runErr != nil && ctx.Err() == nil {
		log.Fatal(runErr)
	}
}
